"""Processor-cell heartbeat (paper Section 2.3).

"A heartbeat signal, generated within the processor cell, is used to
determine if the cell is still active.  A watchdog unit in the
communication fabric monitors these processor cell heartbeat signals and
determines if a cell has exceeded its error threshold."

The heartbeat generator beats every cycle while the cell's detected-error
*score* stays at or below its threshold; once the score exceeds the
threshold, the heartbeat goes silent, which is the watchdog's cue to act.

The score is a leaky bucket: each ``beat()`` call (one watchdog sampling
cycle) first leaks ``decay`` off the score, so a cell suffering occasional
transient glitches recovers headroom between them, while a cell erroring
faster than the leak still goes silent.  ``decay=0`` (the default)
reproduces the original monotone-tally semantics exactly -- the score then
equals the lifetime error count and never shrinks.
"""

from __future__ import annotations


class Heartbeat:
    """Error-gated heartbeat generator with a leaky-bucket error score.

    Args:
        error_threshold: error score tolerated before the heartbeat
            stops.  The paper leaves the exact protocol to future work;
            the grid benchmarks sweep this knob.
        decay: score leaked per ``beat()`` call (one fabric cycle under
            the watchdog's polling discipline).  ``0`` keeps the legacy
            monotone semantics: every recorded error counts forever.
    """

    def __init__(self, error_threshold: int = 8, decay: float = 0.0) -> None:
        if error_threshold < 0:
            raise ValueError(
                f"error_threshold must be non-negative, got {error_threshold}"
            )
        if decay < 0:
            raise ValueError(f"decay must be non-negative, got {decay}")
        self._threshold = error_threshold
        self._decay = decay
        self._errors = 0
        self._score = 0.0
        self._beats = 0
        self._forced_silent = False
        #: Optional observer called after any state-changing method with
        #: this heartbeat as argument.  Used by the sparse grid engine to
        #: maintain its alive-mask and attention sets; None costs nothing.
        self.watcher = None

    @property
    def error_threshold(self) -> int:
        return self._threshold

    @property
    def decay(self) -> float:
        """Score leaked per beat cycle (0 = legacy monotone tally)."""
        return self._decay

    @property
    def error_count(self) -> int:
        """Detected errors recorded over the heartbeat's lifetime."""
        return self._errors

    @property
    def error_score(self) -> float:
        """Current leaky-bucket score (equals ``error_count`` at decay=0)."""
        return self._score

    @property
    def beats_emitted(self) -> int:
        """Total heartbeats emitted."""
        return self._beats

    @property
    def forced_silent(self) -> bool:
        """True when the heartbeat was explicitly killed via ``silence``."""
        return self._forced_silent

    @property
    def healthy(self) -> bool:
        """True while the error score is at or below threshold, not killed.

        The threshold is inclusive: a cell *at* its threshold still
        beats; only exceeding it silences the heartbeat.
        """
        return not self._forced_silent and self._score <= self._threshold

    def record_error(self, count: int = 1) -> None:
        """Add detected errors (e.g. result-copy disagreements)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._errors += count
        self._score += count
        if self.watcher is not None:
            self.watcher(self)

    def silence(self) -> None:
        """Force the heartbeat off (models a hard cell failure)."""
        self._forced_silent = True
        if self.watcher is not None:
            self.watcher(self)

    def revive(self) -> None:
        """Restart a silenced heartbeat with a clean score.

        Used by the watchdog when a quarantined cell passes its probe
        protocol and is re-admitted to service.  The lifetime
        ``error_count`` is deliberately preserved.
        """
        self._forced_silent = False
        self._score = 0.0
        if self.watcher is not None:
            self.watcher(self)

    def beat(self) -> bool:
        """Emit (or withhold) one cycle's heartbeat.

        Each call leaks ``decay`` off the error score first, so a silent
        cell whose errors were transient can recover and resume beating
        (decay=0 never recovers, matching the original semantics).

        Returns:
            True when the heartbeat was emitted this cycle.
        """
        if self._decay:
            self._score = max(0.0, self._score - self._decay)
            if self.watcher is not None:
                self.watcher(self)
        if not self.healthy:
            return False
        self._beats += 1
        return True

    def quiescent(self) -> bool:
        """True when ``beat()`` is a pure counter increment.

        A healthy heartbeat with nothing to leak (zero decay or zero
        score) neither changes state nor can go silent on a beat, so N
        such beats are exactly a +N on ``beats_emitted``.  The sparse
        engine uses this predicate to decide which cells may be
        bulk-credited via :meth:`credit_beats`.
        """
        return self.healthy and (self._decay == 0.0 or self._score == 0.0)

    def credit_beats(self, count: int) -> None:
        """Credit ``count`` skipped-but-owed beats at once.

        Exactly equivalent to ``count`` successive :meth:`beat` calls
        made *while the heartbeat was quiescent*: each such call would
        have leaked nothing and emitted one beat.  The caller (the sparse
        engine) guarantees the skipped polls all happened during
        quiescent spans; the heartbeat's *current* state may already have
        moved on (e.g. an error landed this very cycle), which is why
        this does not re-check :meth:`quiescent`.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self._beats += count
