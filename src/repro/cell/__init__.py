"""The NanoBox processor cell (paper Section 3.3).

Each cell contains a simple ALU, a small read/writable memory (32 words in
the paper's initial investigation), and a communication router.  Critical
memory-word fields -- the ``data-valid`` and ``to-be-computed`` flags --
are stored in triplicate and majority-voted on every access (Section 2.2),
and the computed result is stored as three copies whose majority is taken
at shift-out time.
"""

from repro.cell.memword import (
    MEMORY_WORD_BITS,
    MemoryWord,
    majority_bit,
)
from repro.cell.memory import CELL_MEMORY_WORDS, CellMemory
from repro.cell.aluctrl import ALUControl
from repro.cell.router import Direction, RoutingDecision, route_packet
from repro.cell.heartbeat import Heartbeat
from repro.cell.cell import CellMode, ProcessorCell
from repro.cell.lutctrl import LUTFieldVoter

__all__ = [
    "ALUControl",
    "CELL_MEMORY_WORDS",
    "CellMemory",
    "CellMode",
    "Direction",
    "Heartbeat",
    "LUTFieldVoter",
    "MEMORY_WORD_BITS",
    "MemoryWord",
    "ProcessorCell",
    "RoutingDecision",
    "majority_bit",
    "route_packet",
]
