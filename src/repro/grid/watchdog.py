"""Watchdog, failover, and the cell health lifecycle (paper Section 2.3).

"A watchdog unit in the communication fabric monitors these processor cell
heartbeat signals and determines if a cell has exceeded its error
threshold.  If a processor cell is disabled, the communication fabric
surrounding the disabled processor cell will cease sending instructions to
that processor cell.  If the router and cell memory are still functioning,
the contents of the cell memory will be sent to the surrounding processor
cells so that they can finish any outstanding computations."

The paper's watchdog is a one-shot kill switch, which is the right model
for permanent defects but wastes healthy capacity under transient fault
processes: a single burst retires a cell forever.  This module extends it
into an explicit per-cell health lifecycle::

    ACTIVE --silent--> SUSPECT --still silent--> QUARANTINED
      ^                   |                        |        \\
      |<--beat returns----+       N clean probes   |         M failed
      |                                            v         probe rounds
      +<------------------------------------- (readmitted)      |
                                                                v
                                                             RETIRED

Quarantined cells are salvaged exactly as before, then probed with
known-answer canary instructions (driven by the control processor between
job rounds).  ``LifecyclePolicy()`` -- no suspect grace, probing disabled
-- reproduces the original permanent-disable behaviour exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.alu.reference import reference_compute
from repro.cell.cell import CellFullError
from repro.grid.grid import Coord, NanoBoxGrid
from repro.obs import get_observer


class CellState(enum.Enum):
    """Lifecycle state of one processor cell, as seen by the watchdog."""

    #: Beating normally; in the routing, assignment, and salvage sets.
    ACTIVE = "active"
    #: Heartbeat went silent, within the suspect grace window; may
    #: recover to ACTIVE if the leaky-bucket score decays back under
    #: threshold before the grace runs out.
    SUSPECT = "suspect"
    #: Disabled and salvaged; awaiting canary probes (if probing is on).
    QUARANTINED = "quarantined"
    #: Permanently out of service (failed its probe budget, or probing
    #: is disabled -- the paper's one-shot semantics).
    RETIRED = "retired"


@dataclass(frozen=True)
class LifecyclePolicy:
    """Knobs of the cell health lifecycle.

    The default configuration -- no suspect grace, probing disabled --
    is behaviourally identical to the original watchdog: the first
    silent poll quarantines the cell, and without probing a quarantined
    cell is never re-admitted (``disabled_cells`` reports it forever).

    Args:
        suspect_polls: consecutive silent polls tolerated in SUSPECT
            before quarantine.  0 quarantines on the first silent poll.
        probing: enable the canary probe protocol on quarantined cells.
        readmit_clean_probes: consecutive clean probes required to
            re-admit a quarantined cell into service.
        retire_failed_rounds: failed probe rounds after which a
            quarantined cell is retired permanently.
        max_readmissions: lifetime re-admission budget per cell; once a
            cell has been re-admitted this many times, its next
            quarantine retires it immediately (None = unlimited).
    """

    suspect_polls: int = 0
    probing: bool = False
    readmit_clean_probes: int = 3
    retire_failed_rounds: int = 2
    max_readmissions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.suspect_polls < 0:
            raise ValueError(
                f"suspect_polls must be non-negative, got {self.suspect_polls}"
            )
        if self.readmit_clean_probes < 1:
            raise ValueError(
                "readmit_clean_probes must be positive, got "
                f"{self.readmit_clean_probes}"
            )
        if self.retire_failed_rounds < 1:
            raise ValueError(
                "retire_failed_rounds must be positive, got "
                f"{self.retire_failed_rounds}"
            )
        if self.max_readmissions is not None and self.max_readmissions < 0:
            raise ValueError(
                "max_readmissions must be non-negative or None, got "
                f"{self.max_readmissions}"
            )


#: Known-answer canary instructions, one per ISA opcode (Table 1):
#: ``(opcode, operand1, operand2)``; expected values come from the
#: reference ALU at probe time.
PROBE_CANARIES: Tuple[Tuple[int, int, int], ...] = (
    (0b000, 0xAA, 0x0F),  # AND
    (0b001, 0x55, 0xA0),  # OR
    (0b010, 0xFF, 0x5A),  # XOR
    (0b111, 0x9C, 0x77),  # ADD
)


@dataclass(frozen=True)
class SalvageReport:
    """Record of one cell's failover."""

    failed_cell: Coord
    cycle: int
    salvaged_words: int
    adopted: Dict[Coord, int]
    lost_words: int

    @property
    def fully_salvaged(self) -> bool:
        """True when every pending word found a new home."""
        return self.lost_words == 0


@dataclass(frozen=True)
class ProbeReport:
    """Record of one canary probe of one quarantined cell."""

    cell: Coord
    cycle: int
    passed: bool
    clean_streak: int
    failed_rounds: int
    #: State after the probe: QUARANTINED (still under observation),
    #: ACTIVE (re-admitted this probe), or RETIRED.
    outcome: CellState


class Watchdog:
    """Monitors heartbeats; quarantines silent cells and salvages their work.

    Args:
        grid: the fabric to monitor.
        memory_salvageable: model knob for whether a failed cell's router
            and memory survived (the paper's condition for salvage).  When
            False, pending work dies with the cell and only the control
            processor's retry protocol can recover it.
        policy: lifecycle knobs; the default reproduces the original
            permanent-disable watchdog exactly.
    """

    def __init__(
        self,
        grid: NanoBoxGrid,
        memory_salvageable: bool = True,
        policy: LifecyclePolicy = LifecyclePolicy(),
    ) -> None:
        self._grid = grid
        self._memory_salvageable = memory_salvageable
        self._policy = policy
        self._disabled: Set[Coord] = set()
        self._reports: List[SalvageReport] = []
        self._states: Dict[Coord, CellState] = {}
        self._silent_streak: Dict[Coord, int] = {}
        self._clean_probes: Dict[Coord, int] = {}
        self._failed_rounds: Dict[Coord, int] = {}
        self._readmission_counts: Dict[Coord, int] = {}
        self._probe_reports: List[ProbeReport] = []

    @property
    def grid(self) -> NanoBoxGrid:
        return self._grid

    @property
    def policy(self) -> LifecyclePolicy:
        return self._policy

    @property
    def disabled_cells(self) -> Tuple[Coord, ...]:
        """Cells currently out of service (quarantined or retired)."""
        return tuple(sorted(self._disabled))

    @property
    def reports(self) -> Tuple[SalvageReport, ...]:
        """Failover reports, oldest first."""
        return tuple(self._reports)

    @property
    def probe_reports(self) -> Tuple[ProbeReport, ...]:
        """Canary probe reports, oldest first."""
        return tuple(self._probe_reports)

    # ------------------------------------------------------------- lifecycle

    def state(self, coord: Coord) -> CellState:
        """Current lifecycle state of one cell."""
        return self._states.get(coord, CellState.ACTIVE)

    def cells_in_state(self, state: CellState) -> Tuple[Coord, ...]:
        """Coordinates currently in ``state``, sorted."""
        if state is CellState.ACTIVE:
            return tuple(
                sorted(
                    coord
                    for coord in self._all_coords()
                    if self.state(coord) is CellState.ACTIVE
                )
            )
        return tuple(
            sorted(c for c, s in self._states.items() if s is state)
        )

    def lifecycle_counts(self) -> Dict[str, int]:
        """``{state value: cell count}`` snapshot over the whole grid."""
        counts = {state.value: 0 for state in CellState}
        for coord in self._all_coords():
            counts[self.state(coord).value] += 1
        return counts

    @property
    def readmissions(self) -> int:
        """Total re-admissions granted across all cells."""
        return sum(self._readmission_counts.values())

    @property
    def quarantines(self) -> int:
        """Total quarantine events (salvage reports) so far."""
        return len(self._reports)

    def _all_coords(self):
        return self._grid.all_coords()

    # ---------------------------------------------------------------- polling

    def poll(self) -> List[SalvageReport]:
        """Sample every cell's heartbeat once; handle new failures.

        Returns the salvage reports generated this poll (usually empty).
        """
        new_reports: List[SalvageReport] = []
        # Dense grids yield every cell; the sparse engine yields only
        # cells whose heartbeat could do anything but beat (and credits
        # the skipped quiescent beats in bulk afterwards).
        for cell in self._grid.poll_candidates():
            coord = cell.cell_id
            if coord in self._disabled:
                continue
            if cell.heartbeat.beat():
                if self.state(coord) is CellState.SUSPECT:
                    # The leaky bucket drained below threshold in time.
                    self._states[coord] = CellState.ACTIVE
                    self._silent_streak[coord] = 0
                continue
            streak = self._silent_streak.get(coord, 0) + 1
            self._silent_streak[coord] = streak
            if streak <= self._policy.suspect_polls:
                obs = get_observer()
                if obs.enabled and self.state(coord) is not CellState.SUSPECT:
                    obs.trace.emit(
                        "cell_suspect",
                        source="watchdog",
                        cell=coord,
                        cycle=self._grid.cycle,
                    )
                self._states[coord] = CellState.SUSPECT
                continue
            self._quarantine(coord)
            new_reports.append(self._fail_over(coord))
        self._reports.extend(new_reports)
        return new_reports

    def _quarantine(self, coord: Coord) -> None:
        self._disabled.add(coord)
        self._grid.on_cell_disabled(coord)
        self._silent_streak[coord] = 0
        budget = self._policy.max_readmissions
        exhausted = (
            budget is not None
            and self._readmission_counts.get(coord, 0) >= budget
        )
        if self._policy.probing and not exhausted:
            self._states[coord] = CellState.QUARANTINED
            self._clean_probes[coord] = 0
            self._failed_rounds[coord] = 0
        else:
            # The paper's one-shot semantics: disabled means forever.
            self._states[coord] = CellState.RETIRED
        obs = get_observer()
        obs.metrics.counter("watchdog.quarantines").inc()
        if self._states[coord] is CellState.RETIRED:
            obs.metrics.counter("watchdog.retirements").inc()
        if obs.enabled:
            obs.trace.emit(
                "cell_quarantined",
                source="watchdog",
                cell=coord,
                cycle=self._grid.cycle,
                outcome=self._states[coord].value,
            )
            if self._states[coord] is CellState.RETIRED:
                obs.trace.emit(
                    "cell_retired",
                    source="watchdog",
                    cell=coord,
                    cycle=self._grid.cycle,
                )

    # ---------------------------------------------------------------- probing

    def probe_quarantined(self) -> List[ProbeReport]:
        """Run one canary probe round over every quarantined cell.

        Driven by the control processor between job rounds ("the
        communication fabric surrounding the disabled processor cell"
        retains maintenance access over the mode lines even though data
        traffic has ceased).  ``policy.probing`` off makes this a no-op,
        preserving the original permanent-disable behaviour bit for bit.

        N consecutive clean probes re-admit the cell -- its heartbeat is
        revived with a clean score and it rejoins the routing, assignment,
        and salvage sets; M failed probe rounds retire it permanently.
        """
        if not self._policy.probing:
            return []
        obs = get_observer()
        reports: List[ProbeReport] = []
        canaries = [
            (op, a, b, reference_compute(op, a, b).value)
            for op, a, b in PROBE_CANARIES
        ]
        for coord in self.cells_in_state(CellState.QUARANTINED):
            cell = self._grid.cell(*coord)
            passed = cell.probe(canaries)
            if passed:
                self._clean_probes[coord] = self._clean_probes.get(coord, 0) + 1
                if self._clean_probes[coord] >= self._policy.readmit_clean_probes:
                    self._readmit(coord)
            else:
                self._clean_probes[coord] = 0
                self._failed_rounds[coord] = self._failed_rounds.get(coord, 0) + 1
                if self._failed_rounds[coord] >= self._policy.retire_failed_rounds:
                    self._states[coord] = CellState.RETIRED
                    obs.metrics.counter("watchdog.retirements").inc()
                    if obs.enabled:
                        obs.trace.emit(
                            "cell_retired",
                            source="watchdog",
                            cell=coord,
                            cycle=self._grid.cycle,
                        )
            obs.metrics.counter("watchdog.probes").inc()
            if not passed:
                obs.metrics.counter("watchdog.probe_failures").inc()
            if obs.enabled:
                obs.trace.emit(
                    "probe_result",
                    source="watchdog",
                    cell=coord,
                    cycle=self._grid.cycle,
                    passed=passed,
                    clean_streak=self._clean_probes[coord],
                    failed_rounds=self._failed_rounds[coord],
                    outcome=self.state(coord).value,
                )
            reports.append(
                ProbeReport(
                    cell=coord,
                    cycle=self._grid.cycle,
                    passed=passed,
                    clean_streak=self._clean_probes[coord],
                    failed_rounds=self._failed_rounds[coord],
                    outcome=self.state(coord),
                )
            )
        self._probe_reports.extend(reports)
        return reports

    def _readmit(self, coord: Coord) -> None:
        self._grid.cell(*coord).heartbeat.revive()
        self._disabled.discard(coord)
        self._grid.on_cell_enabled(coord)
        self._states[coord] = CellState.ACTIVE
        self._silent_streak[coord] = 0
        self._readmission_counts[coord] = (
            self._readmission_counts.get(coord, 0) + 1
        )
        obs = get_observer()
        obs.metrics.counter("watchdog.readmissions").inc()
        if obs.enabled:
            obs.trace.emit(
                "cell_readmitted",
                source="watchdog",
                cell=coord,
                cycle=self._grid.cycle,
            )

    # --------------------------------------------------------------- failover

    def _fail_over(self, coord: Coord) -> SalvageReport:
        cell = self._grid.cell(*coord)
        if not self._policy.probing:
            # Idempotent; covers threshold-exceeded cells.  With probing
            # enabled the heartbeat is left unsilenced (its over-threshold
            # score already keeps the cell out of service) so a hard kill
            # stays distinguishable from a salvageable error burst.
            cell.heartbeat.silence()
        if not self._memory_salvageable:
            pending = sum(1 for _ in cell.memory.pending_words())
            cell.memory.clear()
            return SalvageReport(
                failed_cell=coord,
                cycle=self._grid.cycle,
                salvaged_words=0,
                adopted={},
                lost_words=pending,
            )

        words = cell.extract_pending()
        adopted: Dict[Coord, int] = {}
        lost = 0
        # Round-robin over alive neighbours, widening to any alive cell if
        # the immediate neighbourhood is full or dead.  Suspect,
        # quarantined, and retired cells are all excluded: the first two
        # by their silent heartbeats, the last by the disabled set.
        candidates = [
            c
            for c in self._grid.neighbours(*coord).values()
            if self._grid.cell(*c).alive and c not in self._disabled
        ]
        if not candidates:
            candidates = [
                c
                for c in self._grid.alive_cells()
                if c != coord and c not in self._disabled
            ]
        index = 0
        for word in words:
            placed = False
            for _ in range(len(candidates)):
                target = candidates[index % len(candidates)] if candidates else None
                index += 1
                if target is None:
                    break
                try:
                    self._grid.cell(*target).adopt_word(word)
                    adopted[target] = adopted.get(target, 0) + 1
                    placed = True
                    break
                except CellFullError:
                    continue
            if not placed:
                lost += 1
        return SalvageReport(
            failed_cell=coord,
            cycle=self._grid.cycle,
            salvaged_words=len(words),
            adopted=adopted,
            lost_words=lost,
        )
