"""Watchdog and failover (paper Section 2.3, evaluated per Section 7).

"A watchdog unit in the communication fabric monitors these processor cell
heartbeat signals and determines if a cell has exceeded its error
threshold.  If a processor cell is disabled, the communication fabric
surrounding the disabled processor cell will cease sending instructions to
that processor cell.  If the router and cell memory are still functioning,
the contents of the cell memory will be sent to the surrounding processor
cells so that they can finish any outstanding computations."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.cell.cell import CellFullError
from repro.grid.grid import Coord, NanoBoxGrid


@dataclass(frozen=True)
class SalvageReport:
    """Record of one cell's failover."""

    failed_cell: Coord
    cycle: int
    salvaged_words: int
    adopted: Dict[Coord, int]
    lost_words: int

    @property
    def fully_salvaged(self) -> bool:
        """True when every pending word found a new home."""
        return self.lost_words == 0


class Watchdog:
    """Monitors heartbeats; disables silent cells and salvages their work.

    Args:
        grid: the fabric to monitor.
        memory_salvageable: model knob for whether a failed cell's router
            and memory survived (the paper's condition for salvage).  When
            False, pending work dies with the cell and only the control
            processor's retry protocol can recover it.
    """

    def __init__(self, grid: NanoBoxGrid, memory_salvageable: bool = True) -> None:
        self._grid = grid
        self._memory_salvageable = memory_salvageable
        self._disabled: Set[Coord] = set()
        self._reports: List[SalvageReport] = []

    @property
    def disabled_cells(self) -> Tuple[Coord, ...]:
        """Cells the watchdog has taken out of service."""
        return tuple(sorted(self._disabled))

    @property
    def reports(self) -> Tuple[SalvageReport, ...]:
        """Failover reports, oldest first."""
        return tuple(self._reports)

    def poll(self) -> List[SalvageReport]:
        """Sample every cell's heartbeat once; handle new failures.

        Returns the salvage reports generated this poll (usually empty).
        """
        new_reports: List[SalvageReport] = []
        for cell in self._grid.cells():
            coord = cell.cell_id
            if coord in self._disabled:
                continue
            if cell.heartbeat.beat():
                continue
            self._disabled.add(coord)
            new_reports.append(self._fail_over(coord))
        self._reports.extend(new_reports)
        return new_reports

    def _fail_over(self, coord: Coord) -> SalvageReport:
        cell = self._grid.cell(*coord)
        cell.heartbeat.silence()  # idempotent; covers threshold-exceeded cells
        if not self._memory_salvageable:
            pending = sum(1 for _ in cell.memory.pending_words())
            cell.memory.clear()
            return SalvageReport(
                failed_cell=coord,
                cycle=self._grid.cycle,
                salvaged_words=0,
                adopted={},
                lost_words=pending,
            )

        words = cell.extract_pending()
        adopted: Dict[Coord, int] = {}
        lost = 0
        # Round-robin over alive neighbours, widening to any alive cell if
        # the immediate neighbourhood is full or dead.
        candidates = [
            c
            for c in self._grid.neighbours(*coord).values()
            if self._grid.cell(*c).alive
        ]
        if not candidates:
            candidates = [
                c for c in self._grid.alive_cells() if c != coord
            ]
        index = 0
        for word in words:
            placed = False
            for _ in range(len(candidates)):
                target = candidates[index % len(candidates)] if candidates else None
                index += 1
                if target is None:
                    break
                try:
                    self._grid.cell(*target).adopt_word(word)
                    adopted[target] = adopted.get(target, 0) + 1
                    placed = True
                    break
                except CellFullError:
                    continue
            if not placed:
                lost += 1
        return SalvageReport(
            failed_cell=coord,
            cycle=self._grid.cycle,
            salvaged_words=len(words),
            adopted=adopted,
            lost_words=lost,
        )
