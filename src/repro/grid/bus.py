"""Nearest-neighbour 8-bit bus model.

"Processor cells contain four 8-bit buses, with one bus connected to each
of its neighbors" (paper Section 3.1).  A :class:`Bus` is one *directed*
link: it carries a single packet at a time, taking one cycle per byte-wide
flit, so an 8-flit instruction packet occupies the link for 8 cycles.
Nanoscale drive limits mean there is no bypassing or wormhole overlap --
the next packet waits until the previous one fully drains.
"""

from __future__ import annotations

from typing import Optional

from repro.grid.packet import Packet


class Bus:
    """Single-packet-in-flight directed link with flit-serialised latency.

    Args:
        name: human-readable link label (used in statistics).
        flit_overhead: extra cycles each packet occupies the link beyond
            its payload flits -- 1 when CRC framing appends a checksum
            flit (:mod:`repro.grid.packet`), 0 for the bare fabric.
    """

    def __init__(self, name: str, flit_overhead: int = 0) -> None:
        if flit_overhead < 0:
            raise ValueError(f"flit_overhead must be non-negative, got {flit_overhead}")
        self.name = name
        self._flit_overhead = flit_overhead
        self._packet: Optional[Packet] = None
        self._remaining = 0
        self._delivered_count = 0
        self._busy_cycles = 0

    @property
    def busy(self) -> bool:
        """True while a packet is still being serialised across the link."""
        return self._packet is not None

    @property
    def in_flight(self) -> Optional[Packet]:
        """The packet currently on the wire, if any."""
        return self._packet

    @property
    def delivered_count(self) -> int:
        """Packets fully delivered over this link's lifetime."""
        return self._delivered_count

    @property
    def busy_cycles(self) -> int:
        """Total cycles the link spent occupied (utilisation numerator)."""
        return self._busy_cycles

    def try_send(self, packet: Packet) -> bool:
        """Start transmitting ``packet``; returns False if the link is busy."""
        if self._packet is not None:
            return False
        self._packet = packet
        self._remaining = packet.flit_count + self._flit_overhead
        return True

    def tick(self) -> Optional[Packet]:
        """Advance one cycle; returns the packet if it finished arriving."""
        if self._packet is None:
            return None
        self._busy_cycles += 1
        self._remaining -= 1
        if self._remaining > 0:
            return None
        delivered = self._packet
        self._packet = None
        self._delivered_count += 1
        return delivered

    def drop(self) -> Optional[Packet]:
        """Abort the in-flight packet (link endpoint died); returns it."""
        packet = self._packet
        self._packet = None
        self._remaining = 0
        return packet

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"carrying {self._packet!r}" if self._packet else "idle"
        return f"Bus({self.name!r}, {state})"
