"""Fault-adaptive routing policy (paper Sections 6.2 / 7).

The baseline fabric uses the paper's deterministic five-case rule
(column first, then row), which strands any cell whose column is cut by a
dead router.  The Teramac and Phoenix systems the paper compares against
solve this by *rerouting around* faulty blocks; the paper lists the
equivalent NanoBox protocol as future work.  This module implements it:

* packets carry a hop budget and their previous hop (no immediate
  backtracking, which prevents two-cell ping-pong livelock);
* instruction packets try the dimension-ordered direction first, then
  the other productive dimension, then the two unproductive directions,
  taking the first alive neighbour;
* result packets prefer UP (toward the control processor), detour
  laterally around dead cells (alternating preference by column parity so
  detours spread), and only move DOWN as a last resort;
* the hop budget (default ``4 * (rows + cols)``) bounds worst-case
  misrouting; exhausted packets are dropped and recovered by the control
  processor's retry protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cell.router import Direction, route_packet
from repro.grid.packet import Packet

Coord = Tuple[int, int]

#: The four mesh port directions, in a stable order.
MESH_DIRECTIONS = (Direction.UP, Direction.DOWN, Direction.LEFT,
                   Direction.RIGHT)


@dataclass(frozen=True)
class Envelope:
    """A packet in flight, with the routing state the fabric tracks.

    Attributes:
        packet: the payload packet.
        hops: links traversed so far.
        prev: coordinate of the previous hop (``None`` when injected by
            the control processor), used to forbid immediate backtrack.
    """

    packet: Packet
    hops: int = 0
    prev: Optional[Coord] = None

    @property
    def flit_count(self) -> int:
        """Bus occupancy in cycles: the payload's flit count."""
        return self.packet.flit_count

    def forwarded(self, via: Coord) -> "Envelope":
        """The envelope as it leaves ``via`` toward the next hop."""
        return replace(self, hops=self.hops + 1, prev=via)


def default_hop_budget(rows: int, cols: int) -> int:
    """Worst-case misroute allowance before a packet is dropped."""
    return 4 * (rows + cols) + 8


def instruction_candidates(
    dest_row: int, dest_col: int, cell_row: int, cell_col: int
) -> List[Direction]:
    """Direction preference order for an instruction packet.

    Dimension-ordered primary first, then the other productive
    dimension, then the two unproductive directions (deterministic
    order), so a blocked packet spirals around the obstacle instead of
    stopping.
    """
    primary = route_packet(dest_row, dest_col, cell_row, cell_col).direction
    if primary is Direction.HERE:
        return []
    candidates = [primary]
    # The other productive dimension.
    if primary in (Direction.LEFT, Direction.RIGHT):
        if dest_row > cell_row:
            candidates.append(Direction.UP)
        elif dest_row < cell_row:
            candidates.append(Direction.DOWN)
    else:
        if dest_col > cell_col:
            candidates.append(Direction.LEFT)
        elif dest_col < cell_col:
            candidates.append(Direction.RIGHT)
    for direction in MESH_DIRECTIONS:
        if direction not in candidates:
            candidates.append(direction)
    return candidates


def result_candidates(cell_row: int, cell_col: int, top_row: int) -> List[Direction]:
    """Direction preference order for a result packet heading to the CP.

    UP always leads; lateral preference alternates with column parity so
    detour traffic spreads over both sides of an obstacle; DOWN is the
    final fallback.
    """
    lateral = (
        [Direction.LEFT, Direction.RIGHT]
        if cell_col % 2 == 0
        else [Direction.RIGHT, Direction.LEFT]
    )
    return [Direction.UP] + lateral + [Direction.DOWN]


def choose_direction(
    candidates: Sequence[Direction],
    cell: Coord,
    prev: Optional[Coord],
    neighbour_alive: Callable[[Direction], bool],
) -> Optional[Direction]:
    """Pick the first candidate whose neighbour is alive and is not the
    hop we just arrived from.  Falls back to allowing backtrack when the
    previous hop is the *only* live exit, and returns ``None`` when the
    cell is fully isolated."""
    backtrack: Optional[Direction] = None
    for direction in candidates:
        if not neighbour_alive(direction):
            continue
        if prev is not None and direction.step(*cell) == prev:
            backtrack = backtrack or direction
            continue
        return direction
    return backtrack
