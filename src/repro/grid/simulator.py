"""Cycle-based full-system simulator (paper Section 7 future work).

"We also plan to develop a cycle-based, full-system simulator for running
a range of application-level workloads."  :class:`GridSimulator` is that
simulator: it assembles a grid, a watchdog, per-cell ALU fault injection,
persistent memory single-event upsets, and a cell-kill schedule, then runs
whole image-processing jobs through the control processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alu.base import FaultableUnit
from repro.alu.nanobox import NanoBoxALU
from repro.faults.mask import MaskPolicy
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.control import ControlProcessor, JobInstruction, JobResult
from repro.grid.engine import SparseGrid, TemporalScheduler
from repro.grid.grid import Coord, LinkFaultPolicy, NanoBoxGrid
from repro.grid.watchdog import CellState, LifecyclePolicy, Watchdog

#: Valid ``grid_engine`` selections (mirrors the ALU ``backend`` tiers).
GRID_ENGINES = ("dense", "sparse", "auto")
from repro.workloads.bitmap import Bitmap
from repro.workloads.imaging import ImageWorkload


@dataclass(frozen=True)
class SimulationStats:
    """Fabric-level counters gathered after a job."""

    cycles: int
    dropped_packets: int
    failed_cells: Tuple[Coord, ...]
    salvaged_words: int
    lost_words: int
    memory_upsets: int
    corrupt_rejected: int = 0
    link_dropped: int = 0
    link_stalled_cycles: int = 0
    link_bit_flips: int = 0
    silent_corruptions: int = 0
    quarantines: int = 0
    readmissions: int = 0
    retired_cells: Tuple[Coord, ...] = ()
    probes: int = 0
    temporal_fault_events: int = 0


@dataclass(frozen=True)
class ImageJobOutcome:
    """Result of running an image workload through the grid."""

    job: JobResult
    output: Bitmap
    expected: Bitmap
    stats: SimulationStats

    @property
    def pixel_accuracy(self) -> float:
        """Fraction of pixels that arrived and are correct."""
        total = self.expected.pixel_count
        wrong = self.expected.difference_count(self.output)
        return (total - wrong) / total


class GridSimulator:
    """Composable full-system simulation harness.

    Args:
        rows, cols: grid dimensions.
        alu_scheme: bit-level LUT coding scheme for every cell's ALU.
        alu_fault_policy: per-execution transient-fault policy for cell
            ALUs (None = fault-free ALUs).
        memory_upset_rate: probability per stored memory bit per cycle of
            a persistent single-event upset (the Section 2.2 threat the
            triplicated fields defend against).
        kill_schedule: ``{cycle: [cell coordinates]}`` hard failures.
        memory_salvageable: passed through to the watchdog.
        error_threshold: per-cell heartbeat error budget.
        heartbeat_decay: leaky-bucket decay of each cell's heartbeat
            error score per cycle (0 keeps the legacy monotone tally).
        lifecycle_policy: the watchdog's health lifecycle knobs
            (quarantine grace, canary probing, re-admission budgets);
            None keeps the paper's permanent-disable semantics.
        temporal_fault_process: a per-cell transient / intermittent /
            permanent fault process (:mod:`repro.faults.temporal`)
            applied every cycle to alive cells.
        adaptive_routing: route packets around dead cells (see
            :mod:`repro.grid.routing`).
        scrub_interval: cycles between memory-scrub passes (0 disables).
            Scrubbing rewrites every valid word in canonical triplicated
            form, so upsets on protected fields must accumulate within
            one interval to defeat the majority vote.
        lut_router_scheme: build each cell's routing decision from
            error-coded lookup tables with this scheme (paper §7).
        router_fault_policy: per-decision fault policy for the LUT
            routers (requires ``lut_router_scheme``).
        link_fault_config: link-level fault injection for the fabric's
            buses (:mod:`repro.grid.linkfault`); a single config for
            every link or a per-link ``(src, dst) -> config`` callable.
        crc_enabled: CRC-frame every packet so corrupted packets are
            detected and rejected instead of silently delivered (one
            extra cycle per packet per hop).
        seed: base PRNG seed for all injection streams.
        backend: ALU evaluation tier (``scalar``/``batched``/
            ``compiled``/``auto``).  ``compiled``/``auto`` route each
            cell's per-instruction ``compute`` through one shared
            native kernel engine (batches of one); results are
            bit-identical on every tier.  ``None`` keeps the plain
            scalar units.
        grid_engine: fabric evaluation tier.  ``dense`` (default) does
            per-cell work every cycle; ``sparse`` is the event-driven
            :class:`~repro.grid.engine.SparseGrid` core, bit-identical
            to dense but with per-cycle cost proportional to the active
            frontier rather than the grid area; ``auto`` picks sparse
            whenever the configuration supports it.  Persistent memory
            upsets (``memory_upset_rate``) require dense: their upset
            draws come from one RNG shared sequentially across all
            cells.  An explicit ``sparse`` request in that case warns on
            stderr and falls back to dense (stdout is unaffected).
    """

    def __init__(
        self,
        rows: int = 4,
        cols: int = 4,
        alu_scheme: str = "tmr",
        alu_fault_policy: Optional[MaskPolicy] = None,
        memory_upset_rate: float = 0.0,
        kill_schedule: Optional[Dict[int, Sequence[Coord]]] = None,
        memory_salvageable: bool = True,
        error_threshold: int = 8,
        heartbeat_decay: float = 0.0,
        lifecycle_policy: Optional[LifecyclePolicy] = None,
        temporal_fault_process: Optional[TemporalFaultProcess] = None,
        n_words: int = 32,
        adaptive_routing: bool = False,
        scrub_interval: int = 0,
        lut_router_scheme: Optional[str] = None,
        router_fault_policy: Optional[MaskPolicy] = None,
        link_fault_config: Optional[LinkFaultPolicy] = None,
        crc_enabled: bool = False,
        seed: int = 0,
        backend: Optional[str] = None,
        grid_engine: str = "dense",
    ) -> None:
        if memory_upset_rate < 0 or memory_upset_rate >= 1:
            raise ValueError(
                f"memory_upset_rate must be in [0, 1), got {memory_upset_rate}"
            )
        if scrub_interval < 0:
            raise ValueError(
                f"scrub_interval must be non-negative, got {scrub_interval}"
            )
        if grid_engine not in GRID_ENGINES:
            raise ValueError(
                f"unknown grid_engine {grid_engine!r}; valid: {GRID_ENGINES}"
            )
        unsupported = None
        if memory_upset_rate > 0:
            unsupported = (
                "persistent memory upsets draw from one RNG shared "
                "sequentially across all cells"
            )
        if grid_engine == "auto":
            resolved_engine = "dense" if unsupported else "sparse"
        elif grid_engine == "sparse" and unsupported:
            import sys

            print(
                f"warning: sparse grid engine unavailable ({unsupported}); "
                "falling back to dense",
                file=sys.stderr,
            )
            resolved_engine = "dense"
        else:
            resolved_engine = grid_engine
        #: Fabric tier actually in use ("dense" or "sparse").
        self.grid_engine = resolved_engine
        self._rng = np.random.default_rng(seed)
        self._alu_policy = alu_fault_policy
        self._memory_upset_rate = memory_upset_rate
        self._scrub_interval = scrub_interval
        self._scrub_corrections = 0
        self._kill_schedule = {
            int(cycle): list(coords)
            for cycle, coords in (kill_schedule or {}).items()
        }
        self._memory_upsets = 0

        kernel_engine = None
        if backend is not None:
            from repro.kernels import BACKENDS, build_compiled_unit
            from repro.kernels.providers import warn_compiled_unavailable

            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; valid: {BACKENDS}"
                )
            if backend in ("compiled", "auto"):
                # One engine shared by every cell: the plan depends only
                # on the scheme, cells compute sequentially, and the
                # engine holds no cross-call state.
                kernel_engine = build_compiled_unit(
                    NanoBoxALU(scheme=alu_scheme)
                )
                if kernel_engine is None and backend == "compiled":
                    warn_compiled_unavailable("no provider or unsupported unit")

        def alu_factory() -> FaultableUnit:
            unit = NanoBoxALU(scheme=alu_scheme)
            if kernel_engine is not None:
                from repro.kernels import AcceleratedUnit

                return AcceleratedUnit(unit, kernel_engine)
            return unit

        def mask_source_factory(coord: Coord):
            if self._alu_policy is None:
                return lambda: 0
            cell_rng = np.random.default_rng(
                np.random.SeedSequence([seed, coord[0], coord[1]])
            )
            policy = self._alu_policy
            sites = NanoBoxALU(scheme=alu_scheme).site_count

            def source() -> int:
                return policy.generate(sites, cell_rng)

            return source

        router_mask_source_factory = None
        if lut_router_scheme is not None and router_fault_policy is not None:
            from repro.cell.lutrouter import LUTRouter

            router_sites = LUTRouter(lut_router_scheme).site_count

            def router_mask_source_factory(coord: Coord):
                cell_rng = np.random.default_rng(
                    np.random.SeedSequence([seed, coord[0], coord[1], 11])
                )
                policy = router_fault_policy

                def source() -> int:
                    return policy.generate(router_sites, cell_rng)

                return source

        grid_cls = SparseGrid if resolved_engine == "sparse" else NanoBoxGrid
        self.grid = grid_cls(
            rows,
            cols,
            alu_factory=alu_factory,
            mask_source_factory=mask_source_factory,
            n_words=n_words,
            error_threshold=error_threshold,
            heartbeat_decay=heartbeat_decay,
            adaptive_routing=adaptive_routing,
            lut_router_scheme=lut_router_scheme,
            router_mask_source_factory=router_mask_source_factory,
            link_fault_config=link_fault_config,
            crc_enabled=crc_enabled,
            link_fault_seed=seed,
        )
        self.watchdog = Watchdog(
            self.grid,
            memory_salvageable=memory_salvageable,
            policy=lifecycle_policy or LifecyclePolicy(),
        )
        self._temporal_process = temporal_fault_process
        self._temporal_streams = {}
        self._temporal_scheduler = None
        self._temporal_events = 0
        if temporal_fault_process is not None:
            if resolved_engine == "sparse":
                # Event-driven twin of the per-cell streams: same
                # per-cell seeds, applied from a due-date queue instead
                # of sampling every cell every cycle.
                self._temporal_scheduler = TemporalScheduler(
                    self.grid, temporal_fault_process, seed
                )
            else:
                self._temporal_streams = {
                    cell.cell_id: temporal_fault_process.attach(
                        cell.cell_id, seed
                    )
                    for cell in self.grid.cells()
                }
        self.control = ControlProcessor(
            self.grid,
            watchdog=self.watchdog,
            tick_hooks=(
                self._apply_schedule,
                self._apply_temporal_faults,
                self._apply_memory_upsets,
                self._apply_scrub,
            ),
        )

    # ------------------------------------------------------------ injection

    def _apply_schedule(self) -> None:
        coords = self._kill_schedule.pop(self.grid.cycle + 1, None)
        if coords:
            for coord in coords:
                self.grid.kill_cell(*coord)

    def _apply_temporal_faults(self) -> None:
        if self._temporal_scheduler is not None:
            self._temporal_events += self._temporal_scheduler.tick()
            return
        if not self._temporal_streams:
            return
        for cell in self.grid.cells():
            if not cell.alive:
                continue
            event = self._temporal_streams[cell.cell_id].sample()
            if event.quiet:
                continue
            self._temporal_events += 1
            if event.kill:
                self.grid.kill_cell(*cell.cell_id)
            elif event.errors:
                cell.heartbeat.record_error(event.errors)

    def _apply_memory_upsets(self) -> None:
        if self._memory_upset_rate <= 0:
            return
        bits_per_cell = None
        for cell in self.grid.cells():
            if not cell.alive:
                continue
            if bits_per_cell is None:
                bits_per_cell = cell.memory.site_count
            count = int(self._rng.binomial(bits_per_cell, self._memory_upset_rate))
            if count == 0:
                continue
            positions = self._rng.choice(bits_per_cell, size=count, replace=False)
            mask = 0
            for p in positions:
                mask |= 1 << int(p)
            cell.memory.apply_faults(mask)
            self._memory_upsets += count

    def _apply_scrub(self) -> None:
        if self._scrub_interval <= 0:
            return
        if self.grid.cycle % self._scrub_interval != 0:
            return
        for cell in self.grid.cells():
            if cell.alive:
                self._scrub_corrections += cell.memory.scrub()

    @property
    def scrub_corrections(self) -> int:
        """Stored bits repaired by scrubbing so far."""
        return self._scrub_corrections

    # ----------------------------------------------------------------- jobs

    def run_instructions(
        self,
        instructions: Sequence[JobInstruction],
        max_rounds: int = 3,
        shed_to_capacity: bool = False,
    ) -> JobResult:
        """Run raw instructions through the control processor."""
        return self.control.run_job(
            instructions,
            max_rounds=max_rounds,
            shed_to_capacity=shed_to_capacity,
        )

    def run_image_job(
        self,
        bitmap: Bitmap,
        workload: ImageWorkload,
        max_rounds: int = 3,
        fill_value: int = 0,
    ) -> ImageJobOutcome:
        """Process a bitmap: packetise, execute, reassemble by pixel ID.

        Pixels whose result never arrives (dropped packets, dead cells
        past the retry budget) are filled with ``fill_value`` so the
        output image always has the right shape.
        """
        compiled = workload.compile(bitmap)
        instructions: List[JobInstruction] = [
            (iid, op, a, b) for iid, (op, a, b, _expected) in enumerate(compiled)
        ]
        job = self.run_instructions(instructions, max_rounds=max_rounds)
        pixels = [
            job.results.get(iid, fill_value) for iid in range(len(compiled))
        ]
        output = bitmap.with_pixels(pixels)
        return ImageJobOutcome(
            job=job,
            output=output,
            expected=workload.apply(bitmap),
            stats=self.stats(),
        )

    # ------------------------------------------------------------- metrics

    def stats(self) -> SimulationStats:
        """Snapshot fabric counters."""
        salvaged = sum(r.salvaged_words for r in self.watchdog.reports)
        lost = sum(r.lost_words for r in self.watchdog.reports)
        link = self.grid.link_fault_statistics()
        return SimulationStats(
            cycles=self.grid.cycle,
            dropped_packets=len(self.grid.dropped_packets),
            failed_cells=self.watchdog.disabled_cells,
            salvaged_words=salvaged,
            lost_words=lost,
            memory_upsets=self._memory_upsets,
            corrupt_rejected=self.grid.corrupt_rejects,
            link_dropped=self.grid.link_dropped,
            link_stalled_cycles=link.stalled_cycles,
            link_bit_flips=link.bit_flips,
            silent_corruptions=link.silent_corruptions,
            quarantines=self.watchdog.quarantines,
            readmissions=self.watchdog.readmissions,
            retired_cells=self.watchdog.cells_in_state(CellState.RETIRED),
            probes=len(self.watchdog.probe_reports),
            temporal_fault_events=self._temporal_events,
        )
