"""Event-driven sparse grid core for very large fleets.

The dense :class:`~repro.grid.grid.NanoBoxGrid` does per-cell work every
cycle: every bus ticks, every inbox drains, every alive cell takes a
compute/shift-out action, and the watchdog beats every heartbeat each
poll.  That is faithful to the hardware but makes a 10^6-cell fleet cost
10^6 python-level operations per cycle even when almost every cell is
idle and healthy -- which, at realistic fleet fault rates, is almost all
of them almost all of the time.

:class:`SparseGrid` is a drop-in subclass that does per-tick work only
for the *active frontier*:

* cells, buses, inboxes, and outboxes materialise lazily on first touch
  (quiescent cells never exist as objects at all);
* only busy buses tick, only non-empty inboxes route, only non-empty
  outboxes drain;
* only cells that hold work (or whose heartbeat is mid-transition) take
  compute/shift-out actions; idle cells' ALU-scan pointers are fast
  forwarded on demand;
* the watchdog polls only *attention* cells -- those whose heartbeat
  could do anything other than beat -- and every skipped quiescent beat
  is credited in bulk afterwards;
* temporal fault streams are pre-drawn into event tapes
  (:mod:`repro.faults.schedule`) and applied by a
  :class:`TemporalScheduler` priority queue instead of sampling every
  cell every cycle.

The contract is **bit-identity**: for equal construction parameters and
seeds, a SparseGrid and a NanoBoxGrid driven through the same call
sequence produce identical observable state -- heartbeat scores and beat
counts, watchdog transitions, delivery statistics, memory images, bus
statistics, and dropped-packet lists.  Identity holds because

* per-cell and per-link PRNG streams are keyed by coordinate / link
  index (never by construction order), so lazy construction draws the
  same streams;
* skipped work is provably unobservable (an idle cell's compute step is
  a pure pointer increment; an idle bus tick is a no-op; a quiescent
  heartbeat's beat is a pure counter increment) and is replayed in bulk
  the moment it could become observable;
* iteration orders over the active sets match the dense row-major /
  link-index orders, so same-cycle event interleavings are identical.

One dense feature is *not* supported: persistent memory upsets
(``memory_upset_rate``) draw from a single RNG shared sequentially
across all cells every cycle, which cannot be reproduced without
touching every cell; :class:`~repro.grid.simulator.GridSimulator` falls
back to the dense engine when they are enabled.  Custom ``alu_factory``
callables must likewise be construction-order independent (the built-in
ones are deterministic per cell).
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.cell.cell import CellMode, ProcessorCell
from repro.faults.schedule import attach_tape
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.bus import Bus
from repro.grid.grid import (
    CONTROL_PROCESSOR,
    BusStatistics,
    Coord,
    NanoBoxGrid,
)
from repro.grid.linkfault import FaultEvent
from repro.grid.packet import InstructionPacket, ResultPacket
from repro.grid.routing import Envelope


class _LazyDict(dict):
    """A dict that materialises missing entries through a factory.

    ``d[key]`` on a missing key calls ``factory(key)``, stores, and
    returns the result (a factory raising ``KeyError`` rejects the key).
    ``d.get(key)`` and ``key in d`` never materialise -- the engine uses
    them to ask "does this exist yet?" without creating it.
    """

    __slots__ = ("_factory",)

    def __init__(self, factory: Callable[[object], object]) -> None:
        super().__init__()
        self._factory = factory

    def __missing__(self, key):
        value = self._factory(key)
        self[key] = value
        return value


class SparseGrid(NanoBoxGrid):
    """Event-driven :class:`NanoBoxGrid`, bit-identical to the dense core.

    Construction is O(1) in the grid area: the fabric materialises on
    demand.  See the module docstring for the activity-tracking scheme
    and the exact identity contract.
    """

    # ------------------------------------------------------------ construction

    def _build_fabric(self) -> None:
        rows, cols = self.rows, self.cols
        # Liveness mask: answers alive-queries for cells that were never
        # materialised (always alive) without creating them.
        self._alive = np.ones((rows, cols), dtype=bool)
        # Per-column deepest dead row (-1 = none): closed-form
        # reachability under the deterministic top-down routing rule.
        self._col_max_dead = np.full(cols, -1, dtype=np.int64)
        # Attention set: materialised cells whose heartbeat is not
        # quiescent -- dead, suspect, or carrying a decaying score.  The
        # watchdog polls exactly these; everyone else is bulk-credited.
        self._attention: Set[Coord] = set()
        # Cells the watchdog has taken out of service.  Their skipped
        # polls earn no beats (the dense poll loop skips disabled cells
        # before beating them).
        self._wd_disabled: Set[Coord] = set()
        self._polls = 0
        self._synced_at_poll: Dict[Coord, int] = {}
        # Cells taking real per-tick actions in the current phase.
        self._phase_active: Set[Coord] = set()
        self._phase_entry_cycle = 0
        self._actions_done = True
        # Occupancy bookkeeping: cells with unflushed memory mutations,
        # per-cell (pending, completed) counts, and alive-gated totals.
        self._mem_dirty: Set[Coord] = set()
        self._cell_counts: Dict[Coord, Tuple[int, int]] = {}
        self._total_pending = 0
        self._total_completed = 0
        # Active fabric: busy links, non-empty inboxes/outboxes.
        self._active_buses: Set[Tuple[object, object]] = set()
        self._active_inboxes: Set[Coord] = set()
        self._active_outboxes: Set[Coord] = set()
        self._alive_listeners: List[Callable[[Coord, bool], None]] = []
        self._cells = _LazyDict(self._materialise_cell)
        self._buses = _LazyDict(self._materialise_link)
        self._outboxes = _LazyDict(self._materialise_outbox)
        self._inboxes = _LazyDict(self._materialise_inbox)
        if self._lut_router_scheme is not None:
            # LUT routers are capped at 16x16 grids; build them eagerly
            # so the dense routing path's truthiness check stays valid.
            for r in range(rows):
                for c in range(cols):
                    self._materialise_router((r, c))

    def _in_bounds(self, coord) -> bool:
        return (
            coord != CONTROL_PROCESSOR
            and 0 <= coord[0] < self.rows
            and 0 <= coord[1] < self.cols
        )

    def _materialise_cell(self, coord: Coord) -> ProcessorCell:
        if not self._in_bounds(coord):
            raise KeyError(coord)
        cell = self._make_cell(coord)
        cell.set_mode(self._mode)
        # The cell was quiescent (untouched) for every poll so far; pay
        # those beats before hooking the watcher.
        cell.heartbeat.credit_beats(self._polls)
        self._synced_at_poll[coord] = self._polls
        cell.heartbeat.watcher = partial(self._on_heartbeat, coord)
        cell.memory.on_mutate = partial(self._on_memory, coord)
        return cell

    def _materialise_link(self, key) -> Bus:
        src, dst = key
        if src == CONTROL_PROCESSOR:
            valid = self._in_bounds(dst) and dst[0] == self.top_row
        elif dst == CONTROL_PROCESSOR:
            valid = self._in_bounds(src) and src[0] == self.top_row
        else:
            valid = (
                self._in_bounds(src)
                and self._in_bounds(dst)
                and abs(src[0] - dst[0]) + abs(src[1] - dst[1]) == 1
            )
        if not valid:
            raise KeyError(key)
        return self._make_bus(src, dst)

    def _materialise_outbox(self, coord: Coord):
        if not self._in_bounds(coord):
            raise KeyError(coord)
        return self._make_outbox()

    def _materialise_inbox(self, coord: Coord):
        if not self._in_bounds(coord):
            raise KeyError(coord)
        return deque()

    # ---------------------------------------------------------------- watchers

    def add_alive_listener(self, listener: Callable[[Coord, bool], None]) -> None:
        """Register ``listener(coord, healthy)`` for liveness flips."""
        self._alive_listeners.append(listener)

    def _on_heartbeat(self, coord: Coord, _heartbeat=None) -> None:
        """Heartbeat watcher: maintain the mask and the attention set."""
        cell = self._cells[coord]
        heartbeat = cell.heartbeat
        healthy = heartbeat.healthy
        if healthy != bool(self._alive[coord]):
            # Settle occupancy under the old gate, then flip it and move
            # the whole cell's counts across the alive boundary.
            if coord in self._mem_dirty:
                self._flush_cell(coord)
            pending, completed = self._cell_counts.get(coord, (0, 0))
            if healthy:
                self._alive[coord] = True
                self._total_pending += pending
                self._total_completed += completed
                col = coord[1]
                dead = np.nonzero(~self._alive[:, col])[0]
                self._col_max_dead[col] = int(dead[-1]) if dead.size else -1
            else:
                self._total_pending -= pending
                self._total_completed -= completed
                self._alive[coord] = False
                if coord[0] > self._col_max_dead[coord[1]]:
                    self._col_max_dead[coord[1]] = coord[0]
            for listener in self._alive_listeners:
                listener(coord, healthy)
        if heartbeat.quiescent():
            if coord in self._attention:
                self._attention.discard(coord)
                # Every poll so far reached this cell live.
                self._synced_at_poll[coord] = self._polls
        elif coord not in self._attention:
            self._credit_deficit(coord)
            self._attention.add(coord)
            self._join_phase(coord)

    def _on_memory(self, coord: Coord) -> None:
        """Memory watcher: dirty the counts, pull the cell into the phase."""
        self._mem_dirty.add(coord)
        self._join_phase(coord)

    def _credit_deficit(self, coord: Coord) -> None:
        """Repay the beats a quiescent cell was owed for skipped polls.

        No-op for attention cells (they are polled live) and a pure
        bookkeeping reset for watchdog-disabled cells (the dense poll
        loop skips them before beating, so nothing is owed).
        """
        if coord in self._attention:
            return
        owed = self._polls - self._synced_at_poll[coord]
        if owed and coord not in self._wd_disabled:
            self._cells[coord].heartbeat.credit_beats(owed)
        self._synced_at_poll[coord] = self._polls

    def on_cell_disabled(self, coord: Coord) -> None:
        self._credit_deficit(coord)
        self._wd_disabled.add(coord)

    def on_cell_enabled(self, coord: Coord) -> None:
        self._wd_disabled.discard(coord)
        self._synced_at_poll[coord] = self._polls

    # ------------------------------------------------------- phase bookkeeping

    def _phase_ticks(self) -> int:
        """Per-cell actions a dense cell has completed this phase."""
        ticks = self._cycle - self._phase_entry_cycle
        if not self._actions_done:
            ticks -= 1
        return max(ticks, 0)

    def _join_phase(self, coord: Coord) -> None:
        """Make a cell a per-tick actor for the rest of the phase.

        Joining cells were continuously alive and action-free since the
        phase began (anything observable would have joined them sooner),
        so the dense engine's only trace on them is the scan pointer --
        replayed here in O(1).
        """
        if self._mode is CellMode.SHIFT_IN or coord in self._phase_active:
            return
        cell = self._cells[coord]
        ticks = self._phase_ticks()
        if self._mode is CellMode.COMPUTE:
            cell.aluctrl.sync_pointer(ticks % cell.memory.n_words)
        elif ticks > 0:  # SHIFT_OUT: the first idle pop exhausts the scan
            cell.fast_forward_shift_out()
        self._phase_active.add(coord)

    def set_mode(self, mode: CellMode) -> None:
        self._mode = mode
        self._phase_entry_cycle = self._cycle
        self._actions_done = True
        for cell in self._cells.values():
            cell.set_mode(mode)
        if mode is CellMode.SHIFT_IN:
            self._phase_active = set()
            return
        self._flush_mem_dirty()
        field = 0 if mode is CellMode.COMPUTE else 1
        self._phase_active = {
            coord
            for coord, counts in self._cell_counts.items()
            if counts[field] > 0
        }
        self._phase_active.update(self._attention)

    # ------------------------------------------------------ occupancy tracking

    def _flush_cell(self, coord: Coord) -> None:
        cell = self._cells[coord]
        pending = sum(1 for _ in cell.memory.pending_words())
        completed = sum(1 for _ in cell.memory.completed_words())
        old_pending, old_completed = self._cell_counts.get(coord, (0, 0))
        if self._alive[coord]:
            self._total_pending += pending - old_pending
            self._total_completed += completed - old_completed
        self._cell_counts[coord] = (pending, completed)
        self._mem_dirty.discard(coord)

    def _flush_mem_dirty(self) -> None:
        for coord in list(self._mem_dirty):
            self._flush_cell(coord)

    def total_pending_instructions(self) -> int:
        self._flush_mem_dirty()
        return self._total_pending

    def total_completed_instructions(self) -> int:
        self._flush_mem_dirty()
        return self._total_completed

    def free_capacity(self, coord: Coord) -> int:
        if not self._in_bounds(coord):
            raise IndexError(
                f"no cell at {coord} in a {self.rows}x{self.cols} grid"
            )
        cell = self._cells.get(coord)
        if cell is None:
            return self._n_words
        return cell.memory.n_words - cell.memory.occupancy()

    # ----------------------------------------------------------- cell queries

    def _cell_alive(self, coord: Coord) -> bool:
        return bool(self._alive[coord])

    def alive_cells(self) -> List[Coord]:
        rows_idx, cols_idx = np.nonzero(self._alive)
        return [(int(r), int(c)) for r, c in zip(rows_idx, cols_idx)]

    def alive_count(self) -> int:
        return int(self._alive.sum())

    def cells(self) -> Iterator[ProcessorCell]:
        """Materialised cells only (the working set), row-major."""
        return iter([self._cells[c] for c in sorted(self._cells.keys())])

    def poll_candidates(self) -> Iterator[ProcessorCell]:
        """Attention cells, row-major; counts the poll for bulk credit."""
        self._polls += 1
        return iter([self._cells[c] for c in sorted(self._attention)])

    def reachable(self, row: int, col: int) -> bool:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"no cell at ({row}, {col}) in a {self.rows}x{self.cols} grid"
            )
        if not self._alive[row, col]:
            return False
        if not self.adaptive_routing:
            # Reachable iff nothing above it in the column is dead.
            return row >= self._col_max_dead[col]
        return super().reachable(row, col)

    def iter_cell_states(self):
        virtual = None
        for coord in self.all_coords():
            cell = self._cells.get(coord)
            if cell is None:
                if virtual is None:
                    virtual = {
                        "alive": True,
                        "forced_silent": False,
                        "errors": 0,
                        "score": 0.0,
                        "beats": self._polls,
                        "computed": 0,
                        "disagreements": 0,
                        "rejected": 0,
                        "words": (0,) * self._n_words,
                    }
                yield coord, virtual
            else:
                self._credit_deficit(coord)
                yield coord, self._cell_state_record(cell)

    # ------------------------------------------------------------- simulation

    def step(self) -> None:
        self._cycle += 1
        self._actions_done = False
        self._tick_buses()
        self._route_inboxes()
        self._cell_actions()
        self._actions_done = True
        self._drain_outboxes()

    def _tick_buses(self) -> None:
        for key in sorted(
            self._active_buses, key=lambda k: self._link_stream_index(*k)
        ):
            bus = self._buses[key]
            delivered = bus.tick()
            if delivered is not None:
                self._handle_bus_delivery(key[1], delivered)
            if not bus.busy:
                self._active_buses.discard(key)

    def _handle_bus_delivery(self, dst, delivered) -> None:
        super()._handle_bus_delivery(dst, delivered)
        if (
            dst != CONTROL_PROCESSOR
            and not isinstance(delivered, FaultEvent)
            and self._inboxes.get(dst)
        ):
            self._active_inboxes.add(dst)

    def _route_inboxes(self) -> None:
        for coord in sorted(self._active_inboxes):
            inbox = self._inboxes[coord]
            cell = self._cells[coord]
            while inbox:
                envelope = inbox.popleft()
                if not cell.alive:
                    self.dropped_packets.append(envelope.packet)
                    continue
                self._route_one(coord, envelope)
            self._active_inboxes.discard(coord)
            if any(self._outboxes[coord].values()):
                self._active_outboxes.add(coord)

    def _cell_actions(self) -> None:
        if self._mode is CellMode.COMPUTE:
            for coord in sorted(self._phase_active):
                cell = self._cells[coord]
                if cell.alive:
                    cell.compute_step()
        elif self._mode is CellMode.SHIFT_OUT:
            for coord in sorted(self._phase_active):
                cell = self._cells[coord]
                if not cell.alive:
                    continue
                exit_direction = self._result_exit(coord)
                if exit_direction is None:
                    continue  # isolated cell: keep results until retry
                exit_queue = self._outboxes[coord][exit_direction]
                if not exit_queue:
                    popped = cell.pop_result()
                    if popped is not None:
                        iid, result = popped
                        exit_queue.append(
                            Envelope(ResultPacket(iid, result), prev=coord)
                        )
                        self._active_outboxes.add(coord)

    def _drain_outboxes(self) -> None:
        for coord in sorted(self._active_outboxes):
            queues = self._outboxes[coord]
            if not self._cell_alive(coord):
                for queue in queues.values():
                    while queue:
                        self.dropped_packets.append(queue.popleft().packet)
                self._active_outboxes.discard(coord)
                continue
            for direction, queue in queues.items():
                if not queue:
                    continue
                target = self._bus_target(coord, direction)
                if target is None:
                    self.dropped_packets.append(queue.popleft().packet)
                    continue
                key = (coord, target)
                if self._buses[key].try_send(queue[0]):
                    queue.popleft()
                    self._active_buses.add(key)
            if not any(queues.values()):
                self._active_outboxes.discard(coord)

    def cp_send(self, packet: InstructionPacket) -> bool:
        column = self.injection_column(packet.dest_col)
        if column is None:
            raise RuntimeError("no alive top-row cell to inject through")
        key = (CONTROL_PROCESSOR, (self.top_row, column))
        sent = self._buses[key].try_send(Envelope(packet))
        if sent:
            self._active_buses.add(key)
        return sent

    def idle(self) -> bool:
        for key in list(self._active_buses):
            if self._buses[key].busy:
                return False
            self._active_buses.discard(key)
        for coord in list(self._active_inboxes):
            if self._inboxes[coord]:
                return False
            self._active_inboxes.discard(coord)
        for coord in list(self._active_outboxes):
            if any(self._outboxes[coord].values()):
                return False
            self._active_outboxes.discard(coord)
        return True

    # ------------------------------------------------------------- statistics

    def _first_link_key(self):
        """Key of the link with stream index 0 (the dense dict's first)."""
        if self.rows > 1:
            return ((0, 0), (1, 0))
        if self.cols > 1:
            return ((0, 0), (0, 1))
        return (CONTROL_PROCESSOR, (self.top_row, 0))

    def bus_statistics(self) -> BusStatistics:
        if self._cycle == 0:
            return BusStatistics(0, 0.0, 0.0, 0.0, "")
        mesh_links = 2 * (
            self.rows * (self.cols - 1) + self.cols * (self.rows - 1)
        )
        edge_links = 2 * self.cols
        # Sum per-link utilisations individually, in link-index order:
        # the skipped (never-materialised) links contribute exactly 0.0,
        # which is the identity of float addition, so the partial sums
        # -- and hence the averages -- are bit-identical to the dense
        # full-fabric loop.
        mesh_sum = 0.0
        edge_sum = 0.0
        delivered = 0
        busiest_name = ""
        busiest_util = -1.0
        for (src, dst), bus in sorted(
            self._buses.items(), key=lambda item: self._link_stream_index(*item[0])
        ):
            utilisation = bus.busy_cycles / self._cycle
            delivered += bus.delivered_count
            if CONTROL_PROCESSOR in (src, dst):
                edge_sum += utilisation
            else:
                mesh_sum += utilisation
            if utilisation > busiest_util:
                busiest_util = utilisation
                busiest_name = bus.name
        if busiest_util <= 0.0:
            # All-zero utilisation: the dense loop names its first link.
            busiest_name = self._buses[self._first_link_key()].name
        return BusStatistics(
            delivered=delivered,
            mesh_utilisation=mesh_sum / mesh_links if mesh_links else 0.0,
            edge_utilisation=edge_sum / edge_links,
            peak_utilisation=max(busiest_util, 0.0),
            busiest_link=busiest_name,
        )


class GridState:
    """Canonical observable-state snapshot of a grid (any engine).

    Captures everything the differential suite pins: per-cell records
    (liveness, heartbeat, compute counters, full memory image), fabric
    counters, the dropped-packet and CP-inbox sequences, and optionally
    the watchdog's lifecycle view.  Two runs are behaviourally identical
    iff their snapshots compare equal; ``diff`` localises a mismatch.
    """

    def __init__(self, snapshot: Dict[str, object]) -> None:
        self._snapshot = snapshot

    @classmethod
    def from_grid(
        cls, grid: NanoBoxGrid, watchdog=None
    ) -> "GridState":
        def describe(packet) -> Tuple[str, int]:
            kind = (
                "instruction"
                if isinstance(packet, InstructionPacket)
                else "result"
            )
            return (kind, packet.instruction_id)

        snapshot: Dict[str, object] = {
            "grid": (grid.rows, grid.cols),
            "cycle": grid.cycle,
            "mode": grid.mode.value,
            "cells": {
                coord: record for coord, record in grid.iter_cell_states()
            },
            "counters": {
                "misroutes": grid.misroutes,
                "invalid_routes": grid.invalid_routes,
                "corrupt_rejects": grid.corrupt_rejects,
                "cp_corrupt_rejects": grid.cp_corrupt_rejects,
                "link_dropped": grid.link_dropped,
                "dropped_packets": [
                    describe(p) for p in grid.dropped_packets
                ],
                "cp_inbox": [
                    (p.instruction_id, p.result) for p in grid.cp_inbox
                ],
            },
        }
        if watchdog is not None:
            from repro.grid.watchdog import CellState

            snapshot["watchdog"] = {
                "states": {
                    coord: watchdog.state(coord).value
                    for coord in grid.all_coords()
                    if watchdog.state(coord) is not CellState.ACTIVE
                },
                "disabled": watchdog.disabled_cells,
                "quarantines": watchdog.quarantines,
                "readmissions": watchdog.readmissions,
                "salvages": [
                    (r.failed_cell, r.cycle, r.salvaged_words, r.lost_words)
                    for r in watchdog.reports
                ],
                "probes": len(watchdog.probe_reports),
            }
        return cls(snapshot)

    def to_snapshot(self) -> Dict[str, object]:
        """A deep copy of the canonical plain-python snapshot dict.

        Copied so callers can mutate the result (diffing experiments,
        fault-injection what-ifs) without corrupting the state it came
        from.
        """
        return copy.deepcopy(self._snapshot)

    def __eq__(self, other) -> bool:
        if not isinstance(other, GridState):
            return NotImplemented
        return self._snapshot == other._snapshot

    def __repr__(self) -> str:
        return f"GridState({self._snapshot!r})"

    def diff(self, other: "GridState") -> List[str]:
        """Human-readable paths where two snapshots differ (for tests)."""

        def walk(path: str, a, b, out: List[str]) -> None:
            if type(a) is not type(b):
                out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
                return
            if isinstance(a, dict):
                for key in sorted(set(a) | set(b), key=repr):
                    if key not in a:
                        out.append(f"{path}[{key!r}]: missing on left")
                    elif key not in b:
                        out.append(f"{path}[{key!r}]: missing on right")
                    else:
                        walk(f"{path}[{key!r}]", a[key], b[key], out)
            elif isinstance(a, (list, tuple)):
                if len(a) != len(b):
                    out.append(f"{path}: length {len(a)} != {len(b)}")
                for i, (x, y) in enumerate(zip(a, b)):
                    walk(f"{path}[{i}]", x, y, out)
            elif a != b:
                out.append(f"{path}: {a!r} != {b!r}")

        out: List[str] = []
        walk("snapshot", self._snapshot, other.to_snapshot(), out)
        return out


#: Sentinel: the cell died mid-application; re-arm from the tape position
#: on revival instead of resuming a (consumed) scheduled entry.
_REARM = object()

#: First bulk-scan span per cell; doubles on every all-quiet rescan.
_INITIAL_HORIZON = 64

#: Rescan span ceiling: bounds per-rescan latency and tape overshoot.
_MAX_HORIZON = 65536


class TemporalScheduler:
    """Applies a temporal fault process to a grid via a due-date queue.

    The dense path samples every alive cell's
    :class:`~repro.faults.temporal.CellFaultStream` once per cycle.
    This scheduler pre-draws each cell's stream into a
    :class:`~repro.faults.schedule.FaultTape`, bulk-advances over quiet
    spans, and holds one heap entry per cell: the invocation at which
    its next event fires (or at which its quiet horizon runs out and is
    rescanned with a doubled span).  Per ``tick()`` the cost is the
    handful of cells whose entries are due -- not the fleet size.

    Aliveness accounting mirrors the dense loop exactly: a cell's tape
    advances one cycle per ``tick()`` *while the cell is alive*.  A
    liveness listener on the grid pauses a dying cell's entry (storing
    its remaining alive-cycle offset) and resumes it on revival, so
    suspend/revive round trips land events on the same alive-cycle the
    dense per-tick sampler would.

    The grid must be fully alive at construction (a fresh grid is).
    ``tick()`` must be called exactly once per dense-hook invocation,
    alive cells or not.
    """

    def __init__(
        self,
        grid: SparseGrid,
        process: TemporalFaultProcess,
        seed: int,
        chunk: int = 256,
    ) -> None:
        self._grid = grid
        self._inv = 0
        self.fired_total = 0
        self._tapes = {
            coord: attach_tape(process, coord, seed, chunk=chunk)
            for coord in grid.all_coords()
        }
        self._heap: List[Tuple[int, Coord]] = []
        self._due: Dict[Coord, int] = {}
        self._event: Dict[Coord, object] = {}
        self._suspended: Dict[Coord, object] = {}
        self._horizon: Dict[Coord, int] = {}
        for coord in self._tapes:
            self._horizon[coord] = _INITIAL_HORIZON
            self._arm(coord)
        grid.add_alive_listener(self._on_alive_change)

    def _arm(self, coord: Coord) -> None:
        """Scan the tape forward and schedule its next event or rescan.

        Precondition: the tape position equals the cell's alive-cycle
        count as of invocation ``self._inv`` (true at construction, at a
        rescan's due tick, right after applying an event, and at a
        fresh-arm revival).
        """
        tape = self._tapes[coord]
        if tape.dead:
            return
        horizon = self._horizon[coord]
        quiet, event = tape.advance_quiet(horizon)
        if event is None:
            # All quiet: rescan exactly when the scanned span runs out.
            self._horizon[coord] = min(horizon * 2, _MAX_HORIZON)
            due = self._inv + quiet
        else:
            due = self._inv + quiet + 1
        self._due[coord] = due
        self._event[coord] = event
        heapq.heappush(self._heap, (due, coord))

    def _on_alive_change(self, coord: Coord, healthy: bool) -> None:
        if not healthy:
            if coord in self._due:
                remaining = self._due.pop(coord) - self._inv
                self._suspended[coord] = (remaining, self._event.pop(coord))
            else:
                # Mid-application death (its own kill/error event) or a
                # dead tape: nothing scheduled to preserve.
                self._suspended[coord] = _REARM
            return
        state = self._suspended.pop(coord, None)
        if state is None:
            return
        if state is _REARM:
            self._arm(coord)
        else:
            remaining, event = state
            due = self._inv + remaining
            self._due[coord] = due
            self._event[coord] = event
            heapq.heappush(self._heap, (due, coord))

    def tick(self) -> int:
        """Advance one hook invocation; fire due events.  Returns count."""
        self._inv += 1
        fired: List[Tuple[Coord, object]] = []
        heap = self._heap
        while heap and heap[0][0] <= self._inv:
            due, coord = heapq.heappop(heap)
            if self._due.get(coord) != due:
                continue  # stale: suspended or rescheduled since pushed
            del self._due[coord]
            fired.append((coord, self._event.pop(coord)))
        count = 0
        # Row-major application order, matching the dense per-cell loop.
        for coord, event in sorted(fired, key=lambda item: item[0]):
            if event is None:
                self._arm(coord)  # rescan falls due with nothing to apply
                continue
            count += 1
            if event.kill:
                self._grid.kill_cell(*coord)
            elif event.errors:
                self._grid.cell(*coord).heartbeat.record_error(event.errors)
            if coord not in self._suspended:
                self._arm(coord)
            # else: the event killed its own cell; the listener already
            # marked it for a fresh arm on revival.
        self.fired_total += count
        return count
