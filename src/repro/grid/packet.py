"""Grid packet formats and 8-bit flit serialisation.

Data traverses the grid over 8-bit nearest-neighbour buses, so every
packet is a sequence of byte-wide flits led by a start-of-packet marker.
Instruction packets (paper Section 3.2.1) carry "a unique instruction ID,
an ALU instruction, two operands, and the ID of the processor cell where
the instruction will be computed"; result packets (Section 3.2.3) carry
the instruction ID and the majority-voted result.

When the fabric is built with CRC framing enabled, every packet gains one
trailing CRC-8 flit over its payload flits, so routers and the
control-processor inbox can *detect* link corruption instead of silently
executing or recording a flipped packet (see :mod:`repro.grid.linkfault`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

#: Start-of-packet marker values (first flit of every packet).
SOP_INSTRUCTION = 0xA5
SOP_RESULT = 0x5A

#: Flit counts, marker included.  An 8-bit bus therefore needs this many
#: cycles to move one packet across one hop.
FLITS_PER_INSTRUCTION = 8
FLITS_PER_RESULT = 4

#: Extra flits appended to every packet when CRC framing is on.
CRC_FLITS = 1

#: CRC-8 generator polynomial (x^8 + x^2 + x + 1, the CCITT/ATM HEC poly).
CRC8_POLYNOMIAL = 0x07

_BYTE = 0xFF


def _build_crc8_table(poly: int) -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & _BYTE if crc & 0x80 else (crc << 1) & _BYTE
        table.append(crc)
    return table


_CRC8_TABLE = _build_crc8_table(CRC8_POLYNOMIAL)


def crc8(flits: Sequence[int]) -> int:
    """CRC-8 (poly 0x07, init 0) over a sequence of byte-wide flits."""
    crc = 0
    for flit in flits:
        crc = _CRC8_TABLE[(crc ^ (flit & _BYTE))]
    return crc


def frame_flits(packet: "Packet", with_crc: bool = False) -> List[int]:
    """A packet's wire image: payload flits, plus a CRC flit when framed."""
    flits = packet.to_flits()
    if with_crc:
        flits.append(crc8(flits))
    return flits


def crc_valid(flits: Sequence[int]) -> bool:
    """Check a CRC-framed wire image (payload + trailing CRC flit)."""
    if len(flits) < 2:
        return False
    return crc8(flits[:-1]) == (flits[-1] & _BYTE)


@dataclass(frozen=True)
class InstructionPacket:
    """Control-processor -> cell packet (shift-in mode)."""

    dest_row: int
    dest_col: int
    instruction_id: int
    opcode: int
    operand1: int
    operand2: int

    def __post_init__(self) -> None:
        checks = (
            ("dest_row", self.dest_row, 0xFF),
            ("dest_col", self.dest_col, 0xFF),
            ("instruction_id", self.instruction_id, 0xFFFF),
            ("opcode", self.opcode, 0b111),
            ("operand1", self.operand1, _BYTE),
            ("operand2", self.operand2, _BYTE),
        )
        for name, value, limit in checks:
            if not 0 <= value <= limit:
                raise ValueError(f"{name}={value} outside 0..{limit}")

    @property
    def flit_count(self) -> int:
        return FLITS_PER_INSTRUCTION

    def to_flits(self) -> List[int]:
        """Serialise to byte-wide flits, SOP marker first."""
        return [
            SOP_INSTRUCTION,
            self.dest_row,
            self.dest_col,
            (self.instruction_id >> 8) & _BYTE,
            self.instruction_id & _BYTE,
            self.opcode,
            self.operand1,
            self.operand2,
        ]

    @classmethod
    def from_flits(cls, flits: Sequence[int]) -> "InstructionPacket":
        """Deserialise; raises ``ValueError`` on framing errors."""
        if len(flits) != FLITS_PER_INSTRUCTION:
            raise ValueError(
                f"instruction packet needs {FLITS_PER_INSTRUCTION} flits, "
                f"got {len(flits)}"
            )
        if flits[0] != SOP_INSTRUCTION:
            raise ValueError(f"bad instruction SOP marker {flits[0]:#04x}")
        return cls(
            dest_row=flits[1],
            dest_col=flits[2],
            instruction_id=(flits[3] << 8) | flits[4],
            opcode=flits[5],
            operand1=flits[6],
            operand2=flits[7],
        )


@dataclass(frozen=True)
class ResultPacket:
    """Cell -> control-processor packet (shift-out mode).

    Result packets always travel up toward the control processor, so they
    carry no destination ID -- the fabric's shift-out rule moves them.
    """

    instruction_id: int
    result: int

    def __post_init__(self) -> None:
        if not 0 <= self.instruction_id <= 0xFFFF:
            raise ValueError(f"instruction_id={self.instruction_id} outside 16 bits")
        if not 0 <= self.result <= _BYTE:
            raise ValueError(f"result={self.result} outside 8 bits")

    @property
    def flit_count(self) -> int:
        return FLITS_PER_RESULT

    def to_flits(self) -> List[int]:
        """Serialise to byte-wide flits, SOP marker first."""
        return [
            SOP_RESULT,
            (self.instruction_id >> 8) & _BYTE,
            self.instruction_id & _BYTE,
            self.result,
        ]

    @classmethod
    def from_flits(cls, flits: Sequence[int]) -> "ResultPacket":
        """Deserialise; raises ``ValueError`` on framing errors."""
        if len(flits) != FLITS_PER_RESULT:
            raise ValueError(
                f"result packet needs {FLITS_PER_RESULT} flits, got {len(flits)}"
            )
        if flits[0] != SOP_RESULT:
            raise ValueError(f"bad result SOP marker {flits[0]:#04x}")
        return cls(instruction_id=(flits[1] << 8) | flits[2], result=flits[3])


Packet = Union[InstructionPacket, ResultPacket]


def parse_packet(flits: Sequence[int]) -> Packet:
    """Dispatch on the SOP marker and deserialise."""
    if not flits:
        raise ValueError("empty flit sequence")
    if flits[0] == SOP_INSTRUCTION:
        return InstructionPacket.from_flits(flits)
    if flits[0] == SOP_RESULT:
        return ResultPacket.from_flits(flits)
    raise ValueError(f"unknown SOP marker {flits[0]:#04x}")
