"""Link-level fault injection for the grid's communication fabric.

The paper's premise is that *every* nanoscale structure is fault-prone,
yet the baseline :class:`~repro.grid.bus.Bus` delivers flits perfectly.
This module extends the fault model into the interconnect: a
:class:`FaultyBus` flips wire bits, loses packets in flight, and stalls
with per-link configurable rates, reusing the same mask/RNG machinery
(:mod:`repro.faults.mask`) that drives ALU and memory injection.

Corruption is applied to the packet's *wire image* (its byte flits, plus
the CRC flit when framing is enabled), so detection is exactly what a
real receiver could do:

* **CRC mismatch** (framing enabled): the corruption is detected and the
  packet rejected at the receiving router or control-processor inbox;
* **framing violation** (bad SOP marker or an illegal field encoding):
  detected even without CRC, because the flit no longer parses;
* **silent corruption**: the corrupted flits still parse (and, with CRC
  on, the checksum coincidentally matches) -- the packet is delivered
  with flipped destination, instruction-ID, operand, or result bits and
  the fabric mis-executes, which is precisely the failure mode the
  CRC + retransmit protocol exists to close.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

import numpy as np

from repro.coding.bits import popcount
from repro.faults.mask import BernoulliMask
from repro.grid.bus import Bus
from repro.grid.packet import crc_valid, frame_flits, parse_packet
from repro.grid.routing import Envelope

_BYTE = 0xFF


@dataclass(frozen=True)
class LinkFaultConfig:
    """Per-link fault rates, all independent and all defaulting to off.

    Args:
        bit_flip_rate: probability that each wire bit of a packet's flit
            image flips during one link traversal (Bernoulli per bit,
            like the memory-upset model).
        drop_rate: probability that a packet vanishes in flight -- the
            link burns its cycles but nothing arrives (broken via,
            drive-strength fade).
        stall_rate: probability per occupied cycle that the link fails
            to advance its flit counter (timing fault); must be < 1 so
            transmission terminates almost surely.
    """

    bit_flip_rate: float = 0.0
    drop_rate: float = 0.0
    stall_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "drop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if not 0.0 <= self.stall_rate < 1.0:
            raise ValueError(
                f"stall_rate must be within [0, 1), got {self.stall_rate}"
            )

    @property
    def any_faults(self) -> bool:
        """True when at least one rate is nonzero."""
        return self.bit_flip_rate > 0 or self.drop_rate > 0 or self.stall_rate > 0


@dataclass(frozen=True)
class FaultEvent:
    """A delivery-time fault outcome the grid must account for.

    Attributes:
        envelope: the envelope as sent (pre-corruption payload).
        kind: ``"dropped"`` (lost in flight, undetectable at the
            receiver), ``"crc"`` (CRC flit mismatch), or ``"framing"``
            (corrupted flits no longer parse).
    """

    envelope: Envelope
    kind: str

    @property
    def detected(self) -> bool:
        """True when the receiver can observe the fault (CRC/framing)."""
        return self.kind != "dropped"


#: What a faulty link's tick can yield: nothing yet, a clean (or silently
#: corrupted) envelope, or an accounted fault outcome.
Delivery = Union[Envelope, FaultEvent]


class FaultyBus(Bus):
    """A :class:`Bus` whose deliveries pass through a fault channel.

    Args:
        name: link label.
        config: fault rates for this link.
        rng: dedicated PRNG stream (seed it per link so fabrics are
            reproducible and link order-independent).
        crc_enabled: frame packets with a CRC flit; corrupted packets
            whose checksum no longer matches are rejected as ``"crc"``
            fault events instead of being delivered.
        flit_overhead: passed through to :class:`Bus` (1 when CRC
            framing is on, so the checksum flit costs a real cycle).
    """

    def __init__(
        self,
        name: str,
        config: LinkFaultConfig,
        rng: np.random.Generator,
        crc_enabled: bool = False,
        flit_overhead: int = 0,
    ) -> None:
        super().__init__(name, flit_overhead=flit_overhead)
        self._config = config
        self._rng = rng
        self._crc_enabled = crc_enabled
        self._flip_policy = (
            BernoulliMask(config.bit_flip_rate) if config.bit_flip_rate > 0 else None
        )
        self._will_drop = False
        self.bit_flips = 0
        self.dropped_in_flight = 0
        self.stalled_cycles = 0
        self.crc_rejects = 0
        self.framing_rejects = 0
        self.silent_corruptions = 0

    @property
    def config(self) -> LinkFaultConfig:
        return self._config

    def try_send(self, envelope) -> bool:
        if not super().try_send(envelope):
            return False
        self._will_drop = (
            self._config.drop_rate > 0
            and self._rng.random() < self._config.drop_rate
        )
        return True

    def tick(self) -> Optional[Delivery]:
        if (
            self.busy
            and self._config.stall_rate > 0
            and self._rng.random() < self._config.stall_rate
        ):
            # The link holds its flit this cycle: still occupied, no
            # progress.  Bounded in expectation since stall_rate < 1.
            self._busy_cycles += 1
            self.stalled_cycles += 1
            return None
        delivered = super().tick()
        if delivered is None:
            return None
        if self._will_drop:
            self.dropped_in_flight += 1
            return FaultEvent(delivered, "dropped")
        return self._corrupt(delivered)

    def _corrupt(self, envelope: Envelope) -> Delivery:
        """Pass the wire image through the bit-flip channel."""
        if self._flip_policy is None:
            return envelope
        flits = frame_flits(envelope.packet, with_crc=self._crc_enabled)
        mask = self._flip_policy.generate(len(flits) * 8, self._rng)
        if mask == 0:
            return envelope
        self.bit_flips += popcount(mask)
        corrupted = [
            (flit ^ ((mask >> (8 * i)) & _BYTE)) for i, flit in enumerate(flits)
        ]
        if self._crc_enabled:
            if not crc_valid(corrupted):
                self.crc_rejects += 1
                return FaultEvent(envelope, "crc")
            corrupted = corrupted[:-1]  # CRC escape: strip the checksum flit
        try:
            packet = parse_packet(corrupted)
        except ValueError:
            self.framing_rejects += 1
            return FaultEvent(envelope, "framing")
        self.silent_corruptions += 1
        return replace(envelope, packet=packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultyBus({self.name!r}, flips={self._config.bit_flip_rate}, "
            f"drops={self._config.drop_rate}, stalls={self._config.stall_rate})"
        )
