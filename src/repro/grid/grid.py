"""The two-dimensional NanoBox Processor Grid fabric.

Coordinates follow the paper (Figure 2): row addresses *decrease* moving
down away from the control processor, so the top row -- the only row wired
to the control processor, via one 8-bit edge bus per column -- is row
``rows - 1``; column addresses *decrease* moving right, so the leftmost
column is ``cols - 1``.  There are no cross-grid buses: every packet moves
hop by hop over the four nearest-neighbour links of each cell.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.alu.base import FaultableUnit
from repro.alu.nanobox import NanoBoxALU
from repro.cell.aluctrl import MaskSource, _no_faults
from repro.cell.cell import CellFullError, CellMode, ProcessorCell
from repro.cell.router import Direction, route_packet
from repro.grid.bus import Bus
from repro.grid.linkfault import FaultEvent, FaultyBus, LinkFaultConfig
from repro.grid.packet import CRC_FLITS, InstructionPacket, Packet, ResultPacket
from repro.grid.routing import (
    Envelope,
    choose_direction,
    default_hop_budget,
    instruction_candidates,
    result_candidates,
)

#: Coordinate pair (row, col) in paper coordinates.
Coord = Tuple[int, int]

#: Sentinel endpoint for control-processor edge buses.
CONTROL_PROCESSOR = ("CP", "CP")


def _default_alu_factory() -> FaultableUnit:
    """Paper's best cell configuration: triplicated-string LUT ALU."""
    return NanoBoxALU(scheme="tmr")


@dataclass(frozen=True)
class BusStatistics:
    """Aggregate fabric-link counters (see ``NanoBoxGrid.bus_statistics``)."""

    delivered: int
    mesh_utilisation: float
    edge_utilisation: float
    peak_utilisation: float
    busiest_link: str


@dataclass(frozen=True)
class LinkFaultStatistics:
    """Aggregate link-fault counters (see ``NanoBoxGrid.link_fault_statistics``).

    ``crc_rejects`` and ``framing_rejects`` are *detected* corruptions
    (the receiver rejected the packet); ``silent_corruptions`` slipped
    through and were delivered with flipped bits; ``dropped`` packets
    vanished in flight and are only observable as timeouts.
    """

    bit_flips: int = 0
    dropped: int = 0
    stalled_cycles: int = 0
    crc_rejects: int = 0
    framing_rejects: int = 0
    silent_corruptions: int = 0

    @property
    def detected_corruptions(self) -> int:
        """Corrupt packets the fabric rejected rather than delivered."""
        return self.crc_rejects + self.framing_rejects

#: Per-link fault configuration: one config for every link, or a callable
#: mapping ``(src, dst)`` endpoints (cell coords or the CP sentinel) to a
#: config (return None for a perfect link).
LinkFaultPolicy = Union[
    LinkFaultConfig, Callable[[object, object], Optional[LinkFaultConfig]]
]


class NanoBoxGrid:
    """Grid of processor cells, buses, and the control-processor edge bus.

    Args:
        rows: grid height (cells per column).
        cols: grid width (cells per row); the paper envisions "on the
            order of hundreds of processor cells".
        alu_factory: builds each cell's ALU core.
        mask_source_factory: given a cell coordinate, returns that cell's
            per-execution fault-mask supplier (default: fault-free).
        n_words: memory words per cell (paper: 32).
        error_threshold: heartbeat error budget per cell.
        heartbeat_decay: leaky-bucket decay of each cell's heartbeat
            error score per cycle (0 keeps the legacy monotone tally;
            see :class:`repro.cell.heartbeat.Heartbeat`).
        adaptive_routing: when True, packets detour around dead cells
            (the future-work rerouting protocol; see
            :mod:`repro.grid.routing`); when False, the paper's
            deterministic five-case rule is used and anything aimed
            through a dead cell is dropped.
        lut_router_scheme: when set (e.g. ``"tmr"`` or ``"none"``), each
            cell's routing decision runs through a fault-prone
            :class:`~repro.cell.lutrouter.LUTRouter` built with that
            coding scheme instead of the ideal architectural rule --
            paper §7's router-in-LUTs future work, live in the fabric.
        router_mask_source_factory: per-cell fault-mask supplier for the
            LUT routers (one draw per routing decision).
        link_fault_config: link-level fault injection
            (:mod:`repro.grid.linkfault`): either one
            :class:`LinkFaultConfig` applied to every link (mesh and
            control-processor edge buses alike) or a callable
            ``(src, dst) -> Optional[LinkFaultConfig]`` for per-link
            rates.  None (default) keeps the fabric's links perfect.
        crc_enabled: frame every packet with a CRC-8 flit so corrupted
            packets are detected and rejected at the receiving router or
            CP inbox (each rejection also counts against the receiving
            cell's heartbeat, closing the loop to the watchdog).  Costs
            one extra cycle per packet per hop.
        link_fault_seed: base seed for the per-link fault PRNG streams.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        alu_factory: Callable[[], FaultableUnit] = _default_alu_factory,
        mask_source_factory: Optional[Callable[[Coord], MaskSource]] = None,
        n_words: int = 32,
        error_threshold: int = 8,
        heartbeat_decay: float = 0.0,
        adaptive_routing: bool = False,
        lut_router_scheme: Optional[str] = None,
        router_mask_source_factory: Optional[Callable[[Coord], MaskSource]] = None,
        link_fault_config: Optional[LinkFaultPolicy] = None,
        crc_enabled: bool = False,
        link_fault_seed: int = 0,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        if lut_router_scheme is not None and (rows > 16 or cols > 16):
            raise ValueError(
                "LUT routers use 4-bit address nibbles: grid dimensions "
                f"must be <= 16, got {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.adaptive_routing = adaptive_routing
        self._hop_budget = default_hop_budget(rows, cols)
        # Construction parameters kept for deferred (lazy) materialisation
        # by the sparse engine subclass.
        self._alu_factory = alu_factory
        self._mask_source_factory = mask_source_factory
        self._n_words = n_words
        self._error_threshold = error_threshold
        self._heartbeat_decay = heartbeat_decay
        self._lut_router_scheme = lut_router_scheme
        self._router_mask_source_factory = router_mask_source_factory
        self._lut_routers: Dict[Coord, object] = {}
        self._router_mask_sources: Dict[Coord, MaskSource] = {}
        self.misroutes = 0
        self.invalid_routes = 0
        self._cells: Dict[Coord, ProcessorCell] = {}
        # Directed buses between neighbours plus per-column edge buses.
        # When link fault injection or CRC framing is configured, links
        # are built as FaultyBus / overhead-carrying Bus instances.
        self.crc_enabled = crc_enabled
        self._link_fault_config = link_fault_config
        self._link_fault_seed = link_fault_seed
        self.corrupt_rejects = 0
        self.cp_corrupt_rejects = 0
        self.link_dropped = 0
        self._buses: Dict[Tuple[Coord, Coord], Bus] = {}
        # Per-cell per-direction outbound queues of in-flight envelopes;
        # forwarded traffic is queued ahead of locally generated traffic
        # (paper Section 3.2.3).
        self._outboxes: Dict[Coord, Dict[Direction, Deque[Envelope]]] = {}
        self._inboxes: Dict[Coord, Deque[Envelope]] = {}
        self.cp_inbox: Deque[ResultPacket] = deque()
        self.dropped_packets: List[Packet] = []
        self._mode = CellMode.SHIFT_IN
        self._cycle = 0
        self._build_fabric()

    def _build_fabric(self) -> None:
        """Materialise every cell, link, and queue eagerly (dense path).

        The sparse engine overrides this with lazy construction; both
        paths produce identical components for identical coordinates
        because per-cell and per-link PRNG streams are keyed by
        coordinate / link index, never by construction order.
        """
        rows, cols = self.rows, self.cols
        if self._lut_router_scheme is not None:
            for r in range(rows):
                for c in range(cols):
                    self._materialise_router((r, c))
        for r in range(rows):
            for c in range(cols):
                self._cells[(r, c)] = self._make_cell((r, c))
        for r in range(rows):
            for c in range(cols):
                for direction in (Direction.UP, Direction.DOWN,
                                  Direction.LEFT, Direction.RIGHT):
                    nr, nc = direction.step(r, c)
                    if 0 <= nr < rows and 0 <= nc < cols:
                        key = ((r, c), (nr, nc))
                        if key not in self._buses:
                            self._buses[key] = self._make_bus(*key)
        top = rows - 1
        for c in range(cols):
            for key in ((CONTROL_PROCESSOR, (top, c)),
                        ((top, c), CONTROL_PROCESSOR)):
                self._buses[key] = self._make_bus(*key)
        self._outboxes.update(
            (coord, self._make_outbox()) for coord in self._cells
        )
        self._inboxes.update((coord, deque()) for coord in self._cells)

    # ----------------------------------------------------- component factories

    def _make_cell(self, coord: Coord) -> ProcessorCell:
        """Build one processor cell exactly as the eager loop would."""
        source = (
            self._mask_source_factory(coord)
            if self._mask_source_factory
            else _no_faults
        )
        return ProcessorCell(
            coord[0],
            coord[1],
            self._alu_factory(),
            mask_source=source,
            n_words=self._n_words,
            error_threshold=self._error_threshold,
            heartbeat_decay=self._heartbeat_decay,
        )

    def _materialise_router(self, coord: Coord) -> None:
        from repro.cell.lutrouter import LUTRouter

        self._lut_routers[coord] = LUTRouter(self._lut_router_scheme)
        self._router_mask_sources[coord] = (
            self._router_mask_source_factory(coord)
            if self._router_mask_source_factory
            else _no_faults
        )

    @staticmethod
    def _make_outbox() -> Dict[Direction, Deque[Envelope]]:
        return {
            d: deque()
            for d in (Direction.UP, Direction.DOWN,
                      Direction.LEFT, Direction.RIGHT)
        }

    # ---------------------------------------------------------------- links

    def _link_stream_index(self, src, dst) -> int:
        """Deterministic PRNG-stream index of a directed link.

        Closed-form equivalent of the historical running counter over the
        eager construction order (mesh links row-major by source cell in
        UP, DOWN, LEFT, RIGHT order; then the per-column CP edge pairs),
        so lazily built links draw from the same per-link streams as the
        dense fabric.  Pinned against the enumeration order by
        ``tests/grid/test_grid.py``.
        """
        rows, cols = self.rows, self.cols
        mesh_total = 2 * (rows * (cols - 1) + cols * (rows - 1))
        if src == CONTROL_PROCESSOR:
            return mesh_total + 2 * dst[1]
        if dst == CONTROL_PROCESSOR:
            return mesh_total + 2 * src[1] + 1
        (r, c), (nr, nc) = src, dst
        # Links enumerated before source cell (r, c): full rows above,
        # then earlier cells in this row.
        vdeg = (1 if r < rows - 1 else 0) + (1 if r > 0 else 0)
        vpfx = min(r, rows - 1) + max(0, r - 1)
        hpfx = min(c, cols - 1) + max(0, c - 1)
        before = cols * vpfx + r * 2 * (cols - 1) + c * vdeg + hpfx
        # Offset within (r, c)'s UP, DOWN, LEFT, RIGHT in-bounds sequence.
        if nr == r + 1:
            offset = 0
        elif nr == r - 1:
            offset = 1 if r < rows - 1 else 0
        elif nc == c + 1:
            offset = (1 if r < rows - 1 else 0) + (1 if r > 0 else 0)
        else:
            offset = (
                (1 if r < rows - 1 else 0)
                + (1 if r > 0 else 0)
                + (1 if c < cols - 1 else 0)
            )
        return before + offset

    def _make_bus(self, src, dst) -> Bus:
        """Build one directed link, faulty when its config says so."""

        def label(endpoint) -> str:
            return "CP" if endpoint == CONTROL_PROCESSOR else str(endpoint)

        name = f"{label(src)}->{label(dst)}"
        overhead = CRC_FLITS if self.crc_enabled else 0
        config = self._link_fault_config
        if callable(config):
            config = config(src, dst)
        index = self._link_stream_index(src, dst)
        if config is None or not config.any_faults:
            return Bus(name, flit_overhead=overhead)
        rng = np.random.default_rng(
            np.random.SeedSequence([self._link_fault_seed, 0x1B05, index])
        )
        return FaultyBus(
            name,
            config,
            rng,
            crc_enabled=self.crc_enabled,
            flit_overhead=overhead,
        )

    # ------------------------------------------------------------- topology

    @property
    def top_row(self) -> int:
        """Row address of the row wired to the control processor."""
        return self.rows - 1

    def cell(self, row: int, col: int) -> ProcessorCell:
        try:
            return self._cells[(row, col)]
        except KeyError:
            raise IndexError(
                f"no cell at ({row}, {col}) in a {self.rows}x{self.cols} grid"
            ) from None

    def cells(self) -> Iterator[ProcessorCell]:
        """All cells, row-major."""
        return iter(self._cells.values())

    def all_coords(self) -> Iterator[Coord]:
        """Every cell coordinate, row-major, without materialising cells."""
        return ((r, c) for r in range(self.rows) for c in range(self.cols))

    def _cell_alive(self, coord: Coord) -> bool:
        """Liveness predicate; the sparse engine answers from its mask."""
        return self._cells[coord].alive

    def alive_cells(self) -> List[Coord]:
        """Coordinates of all cells whose heartbeat is healthy."""
        return [coord for coord, cell in self._cells.items() if cell.alive]

    def alive_count(self) -> int:
        """Number of alive cells (the sparse engine answers from its mask)."""
        return len(self.alive_cells())

    def on_cell_disabled(self, coord: Coord) -> None:
        """Watchdog hook: ``coord`` was quarantined/retired (no-op here)."""

    def on_cell_enabled(self, coord: Coord) -> None:
        """Watchdog hook: ``coord`` was re-admitted to service (no-op here)."""

    def poll_candidates(self) -> Iterator[ProcessorCell]:
        """Cells the watchdog must actually sample this poll.

        Dense: everyone.  The sparse engine narrows this to cells whose
        heartbeat could change state or miss a beat (non-quiescent),
        bulk-crediting the skipped quiescent beats instead.
        """
        return self.cells()

    def free_capacity(self, coord: Coord) -> int:
        """Free memory words at one cell (lazy-friendly accessor)."""
        cell = self._cells.get(coord)
        if cell is None:
            raise IndexError(
                f"no cell at {coord} in a {self.rows}x{self.cols} grid"
            )
        return cell.memory.n_words - cell.memory.occupancy()

    def neighbours(self, row: int, col: int) -> Dict[Direction, Coord]:
        """In-grid neighbours of a cell, keyed by outgoing direction."""
        result: Dict[Direction, Coord] = {}
        for direction in (Direction.UP, Direction.DOWN,
                          Direction.LEFT, Direction.RIGHT):
            nr, nc = direction.step(row, col)
            if 0 <= nr < self.rows and 0 <= nc < self.cols:
                result[direction] = (nr, nc)
        return result

    def reachable(self, row: int, col: int) -> bool:
        """True when the control processor can exchange packets with a cell.

        Under the paper's deterministic rule, the route runs straight
        down the destination column from the edge bus (and straight back
        up for results), so a cell is reachable iff it and every cell
        above it in its column are alive.  With adaptive routing a cell
        is reachable iff some path of alive cells connects it to an alive
        top-row cell.
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(
                f"no cell at ({row}, {col}) in a {self.rows}x{self.cols} grid"
            )
        if not self._cell_alive((row, col)):
            return False
        if not self.adaptive_routing:
            return all(
                self._cell_alive((r, col)) for r in range(row + 1, self.rows)
            )
        # BFS over alive cells from every alive top-row entry point.
        frontier = [
            (self.top_row, c)
            for c in range(self.cols)
            if self._cell_alive((self.top_row, c))
        ]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            if current == (row, col):
                return True
            for neighbour in self.neighbours(*current).values():
                if neighbour not in seen and self._cell_alive(neighbour):
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return (row, col) in seen

    # ----------------------------------------------------------------- mode

    @property
    def mode(self) -> CellMode:
        return self._mode

    @property
    def cycle(self) -> int:
        """Cycles simulated so far."""
        return self._cycle

    def set_mode(self, mode: CellMode) -> None:
        """Broadcast a mode switch to every cell (control-processor lines)."""
        self._mode = mode
        for cell in self._cells.values():
            cell.set_mode(mode)

    # ----------------------------------------------------------- CP traffic

    def injection_column(self, dest_col: int) -> Optional[int]:
        """Edge-bus column the CP should inject on for a destination.

        The deterministic fabric always injects on the destination
        column; the adaptive fabric injects on the nearest *alive*
        top-row cell's column (ties broken toward lower columns).
        Returns ``None`` when no top-row cell is alive.
        """
        if not 0 <= dest_col < self.cols:
            raise ValueError(f"destination column {dest_col} out of range")
        if not self.adaptive_routing:
            return dest_col
        alive = [
            c for c in range(self.cols)
            if self._cell_alive((self.top_row, c))
        ]
        if not alive:
            return None
        return min(alive, key=lambda c: (abs(c - dest_col), c))

    def cp_send(self, packet: InstructionPacket) -> bool:
        """Control processor pushes a packet onto an edge bus.

        Returns False when the selected bus is still busy.

        Raises:
            RuntimeError: with adaptive routing when no alive top-row
                cell remains to inject through.
        """
        column = self.injection_column(packet.dest_col)
        if column is None:
            raise RuntimeError("no alive top-row cell to inject through")
        top_cell = (self.top_row, column)
        return self._buses[(CONTROL_PROCESSOR, top_cell)].try_send(
            Envelope(packet)
        )

    def cp_bus_busy(self, col: int) -> bool:
        """True while column ``col``'s downstream edge bus is occupied."""
        return self._buses[(CONTROL_PROCESSOR, (self.top_row, col))].busy

    # ------------------------------------------------------------- failures

    def kill_cell(self, row: int, col: int) -> None:
        """Hard-fail a cell (heartbeat silenced immediately)."""
        self.cell(row, col).heartbeat.silence()

    # ----------------------------------------------------------- simulation

    def step(self) -> None:
        """Advance the whole fabric one clock cycle."""
        self._cycle += 1
        self._tick_buses()
        self._route_inboxes()
        self._cell_actions()
        self._drain_outboxes()

    def _tick_buses(self) -> None:
        for (_, dst), bus in self._buses.items():
            delivered = bus.tick()
            if delivered is not None:
                self._handle_bus_delivery(dst, delivered)

    def _handle_bus_delivery(self, dst, delivered) -> None:
        """Resolve one bus delivery (or fault event) at its receiver."""
        if isinstance(delivered, FaultEvent):
            self.dropped_packets.append(delivered.envelope.packet)
            if not delivered.detected:
                # Lost in flight: invisible to the receiver, only the
                # control processor's delivery timeout recovers it.
                self.link_dropped += 1
                return
            # Detected corruption (CRC or framing reject).  The
            # receiver discards the packet; a cell receiver also
            # charges its heartbeat, so a persistently noisy link
            # eventually trips the watchdog (paper Section 2.3).
            self.corrupt_rejects += 1
            if dst == CONTROL_PROCESSOR:
                self.cp_corrupt_rejects += 1
            elif self._cell_alive(dst):
                self._cells[dst].heartbeat.record_error()
            return
        if dst == CONTROL_PROCESSOR:
            if isinstance(delivered.packet, ResultPacket):
                self.cp_inbox.append(delivered.packet)
            else:  # pragma: no cover - cells never send instructions up
                self.dropped_packets.append(delivered.packet)
        elif self._cell_alive(dst):
            self._inboxes[dst].append(delivered)
        else:
            # The fabric around a disabled cell ceases delivering to it.
            self.dropped_packets.append(delivered.packet)

    def _neighbour_alive_test(self, coord: Coord, allow_cp: bool):
        """Predicate: is the neighbour through a direction a live exit?

        The control processor is a valid exit only for result packets
        (``allow_cp``); instructions must stay inside the grid.
        """

        def alive(direction: Direction) -> bool:
            target = self._bus_target(coord, direction)
            if target is None:
                return False
            if target == CONTROL_PROCESSOR:
                return allow_cp
            return self._cell_alive(target)

        return alive

    def _route_one(self, coord: Coord, envelope: Envelope) -> None:
        """Decide one envelope's fate at one cell."""
        cell = self._cells[coord]
        packet = envelope.packet
        if envelope.hops > self._hop_budget:
            self.dropped_packets.append(packet)
            return

        if isinstance(packet, ResultPacket):
            if not self.adaptive_routing:
                # Results always flow toward the control processor;
                # through-traffic goes to the head of the queue.
                self._outboxes[coord][Direction.UP].appendleft(
                    envelope.forwarded(coord)
                )
                return
            direction = choose_direction(
                result_candidates(cell.row, cell.col, self.top_row),
                coord,
                envelope.prev,
                self._neighbour_alive_test(coord, allow_cp=True),
            )
            if direction is None:
                self.dropped_packets.append(packet)
            else:
                self._outboxes[coord][direction].appendleft(
                    envelope.forwarded(coord)
                )
            return

        if self._lut_routers:
            # Paper §7: the routing decision itself runs through
            # fault-prone lookup tables.
            router = self._lut_routers[coord]
            direction, valid = router.route(
                packet.dest_row,
                packet.dest_col,
                cell.row,
                cell.col,
                fault_mask=self._router_mask_sources[coord](),
            )
            if not valid:
                self.invalid_routes += 1
                self.dropped_packets.append(packet)
                return
            ideal = route_packet(
                packet.dest_row, packet.dest_col, cell.row, cell.col
            ).direction
            if direction is not ideal:
                self.misroutes += 1
            if direction is Direction.HERE:
                try:
                    cell.store_instruction(
                        packet.instruction_id,
                        packet.opcode,
                        packet.operand1,
                        packet.operand2,
                    )
                except CellFullError:
                    self.dropped_packets.append(packet)
                return
            self._outboxes[coord][direction].append(envelope.forwarded(coord))
            return

        decision = route_packet(
            packet.dest_row, packet.dest_col, cell.row, cell.col
        )
        if decision.keep:
            try:
                cell.store_instruction(
                    packet.instruction_id,
                    packet.opcode,
                    packet.operand1,
                    packet.operand2,
                )
            except CellFullError:
                self.dropped_packets.append(packet)
            return
        if not self.adaptive_routing:
            self._outboxes[coord][decision.direction].append(
                envelope.forwarded(coord)
            )
            return
        direction = choose_direction(
            instruction_candidates(
                packet.dest_row, packet.dest_col, cell.row, cell.col
            ),
            coord,
            envelope.prev,
            self._neighbour_alive_test(coord, allow_cp=False),
        )
        if direction is None:
            self.dropped_packets.append(packet)
        else:
            self._outboxes[coord][direction].append(envelope.forwarded(coord))

    def _route_inboxes(self) -> None:
        for coord, inbox in self._inboxes.items():
            cell = self._cells[coord]
            while inbox:
                envelope = inbox.popleft()
                if not cell.alive:
                    self.dropped_packets.append(envelope.packet)
                    continue
                self._route_one(coord, envelope)

    def _result_exit(self, coord: Coord) -> Optional[Direction]:
        """Direction a freshly popped result should leave through."""
        if not self.adaptive_routing:
            return Direction.UP
        cell = self._cells[coord]
        return choose_direction(
            result_candidates(cell.row, cell.col, self.top_row),
            coord,
            None,
            self._neighbour_alive_test(coord, allow_cp=True),
        )

    def _cell_actions(self) -> None:
        for coord, cell in self._cells.items():
            if not cell.alive:
                continue
            if self._mode is CellMode.COMPUTE:
                cell.compute_step()
            elif self._mode is CellMode.SHIFT_OUT:
                exit_direction = self._result_exit(coord)
                if exit_direction is None:
                    continue  # isolated cell: keep results until retry
                exit_queue = self._outboxes[coord][exit_direction]
                if not exit_queue:
                    popped = cell.pop_result()
                    if popped is not None:
                        iid, result = popped
                        exit_queue.append(
                            Envelope(ResultPacket(iid, result), prev=coord)
                        )

    def _drain_outboxes(self) -> None:
        for coord, queues in self._outboxes.items():
            if not self._cells[coord].alive:
                for queue in queues.values():
                    while queue:
                        self.dropped_packets.append(queue.popleft().packet)
                continue
            for direction, queue in queues.items():
                if not queue:
                    continue
                target = self._bus_target(coord, direction)
                if target is None:
                    # Outer-edge buses are disabled (paper Section 3.1)
                    # except the top row's link to the control processor.
                    self.dropped_packets.append(queue.popleft().packet)
                    continue
                bus = self._buses[(coord, target)]
                if bus.try_send(queue[0]):
                    queue.popleft()

    def _bus_target(self, coord: Coord, direction: Direction):
        row, col = coord
        nr, nc = direction.step(row, col)
        if 0 <= nr < self.rows and 0 <= nc < self.cols:
            return (nr, nc)
        if direction is Direction.UP and row == self.top_row:
            return CONTROL_PROCESSOR
        return None

    # ------------------------------------------------------------ inventory

    def idle(self) -> bool:
        """True when no packet is in flight, queued, or undelivered."""
        if any(bus.busy for bus in self._buses.values()):
            return False
        if any(self._inboxes[c] for c in self._cells):
            return False
        for queues in self._outboxes.values():
            if any(queues[d] for d in queues):
                return False
        return True

    def total_pending_instructions(self) -> int:
        """Valid, not-yet-computed words across all alive cells."""
        return sum(
            sum(1 for _ in cell.memory.pending_words())
            for cell in self._cells.values()
            if cell.alive
        )

    def total_completed_instructions(self) -> int:
        """Computed words awaiting shift-out across all alive cells."""
        return sum(
            sum(1 for _ in cell.memory.completed_words())
            for cell in self._cells.values()
            if cell.alive
        )

    def _cell_state_record(self, cell: ProcessorCell) -> Dict[str, object]:
        """Canonical observable state of one cell (plain python values)."""
        memory = cell.memory
        return {
            "alive": cell.alive,
            "forced_silent": cell.heartbeat.forced_silent,
            "errors": cell.heartbeat.error_count,
            "score": cell.heartbeat.error_score,
            "beats": cell.heartbeat.beats_emitted,
            "computed": cell.aluctrl.computed_total,
            "disagreements": cell.aluctrl.disagreements,
            "rejected": cell.rejected_packets,
            "words": tuple(memory.read_raw(i) for i in range(memory.n_words)),
        }

    def iter_cell_states(self) -> Iterator[Tuple[Coord, Dict[str, object]]]:
        """Yield ``(coord, record)`` for every cell, row-major.

        The record covers every field observable through the public cell
        API; the sparse engine overrides this to synthesise records for
        never-materialised cells, so snapshots compare across engines.
        """
        for coord in self.all_coords():
            yield coord, self._cell_state_record(self._cells[coord])

    def bus_statistics(self) -> "BusStatistics":
        """Aggregate link-utilisation counters since construction.

        Utilisation = busy cycles / elapsed cycles, averaged separately
        over the mesh links and the control-processor edge buses (the
        edge buses are the paper's only pin interface and the expected
        bottleneck).
        """
        if self._cycle == 0:
            return BusStatistics(0, 0.0, 0.0, 0.0, "")
        mesh_util: List[float] = []
        edge_util: List[float] = []
        busiest_name = ""
        busiest_util = -1.0
        for (src, dst), bus in self._buses.items():
            utilisation = bus.busy_cycles / self._cycle
            if CONTROL_PROCESSOR in (src, dst):
                edge_util.append(utilisation)
            else:
                mesh_util.append(utilisation)
            if utilisation > busiest_util:
                busiest_util = utilisation
                busiest_name = bus.name
        return BusStatistics(
            delivered=sum(b.delivered_count for b in self._buses.values()),
            mesh_utilisation=sum(mesh_util) / len(mesh_util) if mesh_util else 0.0,
            edge_utilisation=sum(edge_util) / len(edge_util) if edge_util else 0.0,
            peak_utilisation=max(busiest_util, 0.0),
            busiest_link=busiest_name,
        )

    def link_fault_statistics(self) -> LinkFaultStatistics:
        """Aggregate link-fault counters over every faulty link."""
        totals = LinkFaultStatistics()
        faulty = [b for b in self._buses.values() if isinstance(b, FaultyBus)]
        if not faulty:
            return totals
        return LinkFaultStatistics(
            bit_flips=sum(b.bit_flips for b in faulty),
            dropped=sum(b.dropped_in_flight for b in faulty),
            stalled_cycles=sum(b.stalled_cycles for b in faulty),
            crc_rejects=sum(b.crc_rejects for b in faulty),
            framing_rejects=sum(b.framing_rejects for b in faulty),
            silent_corruptions=sum(b.silent_corruptions for b in faulty),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = len(self.alive_cells())
        return (
            f"NanoBoxGrid({self.rows}x{self.cols}, mode={self._mode.value}, "
            f"alive={alive}/{self.rows * self.cols}, cycle={self._cycle})"
        )
