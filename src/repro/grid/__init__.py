"""The NanoBox Processor Grid system level (paper Sections 2.3 and 3).

A two-dimensional grid of processor cells with nearest-neighbour 8-bit
buses and no cross-grid wiring; the top-row cells connect to a conventional
CMOS control processor through the edge bus.  The control processor
packetises work (shift-in), commands a global switch to compute mode, and
collects result packets (shift-out), reassembling them by unique
instruction ID.  A watchdog in the communication fabric monitors cell
heartbeats, disables cells that exceed their error threshold, and salvages
their unfinished memory words into neighbouring cells -- the system-level
rung of the recursive hierarchy, which the paper describes but leaves to
future work to evaluate; this package implements and evaluates it.
"""

from repro.grid.packet import (
    FLITS_PER_INSTRUCTION,
    FLITS_PER_RESULT,
    InstructionPacket,
    Packet,
    ResultPacket,
)
from repro.grid.bus import Bus
from repro.grid.linkfault import FaultEvent, FaultyBus, LinkFaultConfig
from repro.grid.grid import LinkFaultStatistics, NanoBoxGrid
from repro.grid.watchdog import (
    CellState,
    LifecyclePolicy,
    ProbeReport,
    SalvageReport,
    Watchdog,
)
from repro.grid.engine import GridState, SparseGrid, TemporalScheduler
from repro.grid.control import ControlProcessor, DeliveryStats, JobResult
from repro.grid.simulator import GridSimulator, SimulationStats

__all__ = [
    "Bus",
    "CellState",
    "ControlProcessor",
    "DeliveryStats",
    "FaultEvent",
    "FaultyBus",
    "FLITS_PER_INSTRUCTION",
    "FLITS_PER_RESULT",
    "GridSimulator",
    "GridState",
    "InstructionPacket",
    "JobResult",
    "LifecyclePolicy",
    "LinkFaultConfig",
    "LinkFaultStatistics",
    "NanoBoxGrid",
    "Packet",
    "ProbeReport",
    "ResultPacket",
    "SalvageReport",
    "SimulationStats",
    "SparseGrid",
    "TemporalScheduler",
    "Watchdog",
]
