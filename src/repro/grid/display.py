"""ASCII rendering of grid state.

One glyph block per cell, drawn in paper orientation (control processor
and highest row address at the top, highest column address at the left),
showing liveness, memory occupancy, and error pressure at a glance.
Used by the CLI's ``grid --show-grid`` and the failover example.
"""

from __future__ import annotations

from typing import List

from repro.grid.grid import NanoBoxGrid
from repro.grid.watchdog import CellState, Watchdog

#: One-character glyph per lifecycle state (``render_lifecycle``).
_STATE_GLYPHS = {
    CellState.ACTIVE: "#",
    CellState.SUSPECT: "?",
    CellState.QUARANTINED: "Q",
    CellState.RETIRED: "X",
}


def _cell_glyph(cell) -> str:
    """Four-character summary of one cell: ``Roo!`` style.

    * first char: ``#`` alive / ``X`` dead;
    * next two: memory occupancy (hex, capped at 0xFF);
    * last: error pressure -- ``.`` none, digits up to 9, ``!`` over 9.
    """
    state = "#" if cell.alive else "X"
    occupancy = min(cell.memory.occupancy(), 0xFF)
    errors = cell.heartbeat.error_count
    if errors == 0:
        pressure = "."
    elif errors <= 9:
        pressure = str(errors)
    else:
        pressure = "!"
    return f"{state}{occupancy:02d}{pressure}"


def render_grid(grid: NanoBoxGrid) -> str:
    """Render the fabric as rows of cell glyphs plus a legend.

    >>> from repro.grid.grid import NanoBoxGrid
    >>> print(render_grid(NanoBoxGrid(1, 2)))  # doctest: +SKIP
    """
    lines: List[str] = []
    width = grid.cols * 5 + 1
    lines.append(" CP ".center(width, "="))
    for row in reversed(range(grid.rows)):
        glyphs = []
        for col in reversed(range(grid.cols)):
            glyphs.append(_cell_glyph(grid.cell(row, col)))
        lines.append(" " + " ".join(glyphs))
    lines.append("-" * width)
    alive = len(grid.alive_cells())
    lines.append(
        f" {alive}/{grid.rows * grid.cols} alive | cycle {grid.cycle} | "
        f"mode {grid.mode.value}"
    )
    lines.append(
        " legend: '#nn?' = alive, nn words used, ? = error pressure "
        "(. none, 1-9, ! >9); 'Xnn?' = disabled"
    )
    return "\n".join(lines)


def render_lifecycle(watchdog: Watchdog) -> str:
    """Render the watchdog's per-cell health lifecycle as cell glyphs.

    Same layout as :func:`render_grid` but the first character encodes
    the lifecycle state (``#`` active, ``?`` suspect, ``Q`` quarantined,
    ``X`` retired), so a chaos run's quarantine and re-admission churn
    is debuggable at a glance.
    """
    grid = watchdog.grid
    lines: List[str] = []
    width = grid.cols * 5 + 1
    lines.append(" CP ".center(width, "="))
    for row in reversed(range(grid.rows)):
        glyphs = []
        for col in reversed(range(grid.cols)):
            cell = grid.cell(row, col)
            state = _STATE_GLYPHS[watchdog.state((row, col))]
            occupancy = min(cell.memory.occupancy(), 0xFF)
            errors = cell.heartbeat.error_count
            if errors == 0:
                pressure = "."
            elif errors <= 9:
                pressure = str(errors)
            else:
                pressure = "!"
            glyphs.append(f"{state}{occupancy:02d}{pressure}")
        lines.append(" " + " ".join(glyphs))
    lines.append("-" * width)
    counts = watchdog.lifecycle_counts()
    lines.append(
        f" active {counts['active']} | suspect {counts['suspect']} | "
        f"quarantined {counts['quarantined']} | retired {counts['retired']} | "
        f"readmitted {watchdog.readmissions}x | cycle {grid.cycle}"
    )
    lines.append(
        " legend: first char = lifecycle state (# active, ? suspect, "
        "Q quarantined, X retired), then words used + error pressure"
    )
    return "\n".join(lines)


def render_reachability(grid: NanoBoxGrid) -> str:
    """Render which cells the control processor can still reach.

    ``O`` reachable, ``x`` alive-but-stranded, ``.`` dead -- the map that
    makes the deterministic-vs-adaptive routing difference visible.
    """
    lines: List[str] = []
    lines.append("=CP" + "=" * (2 * grid.cols - 2))
    for row in reversed(range(grid.rows)):
        glyphs = []
        for col in reversed(range(grid.cols)):
            cell = grid.cell(row, col)
            if not cell.alive:
                glyphs.append(".")
            elif grid.reachable(row, col):
                glyphs.append("O")
            else:
                glyphs.append("x")
        lines.append(" " + " ".join(glyphs))
    lines.append(
        " O reachable   x stranded   . dead   "
        f"(adaptive routing: {'on' if grid.adaptive_routing else 'off'})"
    )
    return "\n".join(lines)
