"""The conventional CMOS control processor (paper Section 3).

"The control microprocessor packages data into a form the NanoBox
Processor Grid understands, stores that data in its CMOS memory, then
feeds the data to the NanoBox Processor Grid by a bus along one edge of
the grid" -- and, because packets carry unique instruction IDs, it can
reassemble results arriving in any order (Section 3.2.3).

The retry protocol implemented here answers the paper's future-work
question of "how the control microprocessor should reroute data assigned
to a failed processor cell", extended into a reliable transport over the
fault-prone fabric of :mod:`repro.grid.linkfault`:

* per-instruction delivery tracking: only packets actually injected onto
  an edge bus count toward the expected shift-out total;
* cycle-budget timeouts: every phase is bounded, and a phase that blows
  its budget is *recorded* (``DeliveryStats.aborted_phases``) rather than
  raised, so ``run_job`` always returns a :class:`JobResult`;
* bounded retransmit with backoff: instructions whose results never
  arrived are resubmitted on later rounds, with the shift-out patience
  window widened geometrically per round (stalled links, long detours);
* duplicate-result suppression: the first result per instruction ID
  wins; later copies (late arrivals of retransmitted work) are counted
  and discarded, as are results whose ID matches no submitted
  instruction (silent link corruption with CRC framing off);
* graceful degradation: a partial job reports per-cause accounting --
  corrupt-rejected, link-dropped, timed-out, retransmitted, unassigned
  -- instead of raising.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.cell.cell import CellMode
from repro.grid.grid import Coord, NanoBoxGrid
from repro.grid.packet import InstructionPacket
from repro.grid.watchdog import Watchdog
from repro.obs import get_observer

#: One job instruction: (instruction_id, opcode, operand1, operand2).
JobInstruction = Tuple[int, int, int, int]


@dataclass
class PhaseStats:
    """Cycle accounting for one mode phase of one round."""

    shift_in: int = 0
    compute: int = 0
    shift_out: int = 0

    @property
    def total(self) -> int:
        return self.shift_in + self.compute + self.shift_out


@dataclass
class DeliveryStats:
    """Per-cause transport accounting for one job.

    Attributes:
        enqueued: instruction packets actually injected onto an edge bus
            (the denominator for per-round timeout tracking).
        undeliverable: packets never injected -- no alive top-row entry
            point existed (or appeared to die mid-phase).
        retransmissions: injections beyond an instruction's first (the
            retry protocol's overhead in packets).
        duplicates: result packets discarded because a result for that
            instruction ID had already been accepted.
        spurious_results: result packets whose instruction ID matched no
            submitted instruction (silent ID corruption without CRC).
        timed_out: per-round events where an injected instruction
            produced no result within the round's delivery window.
        corrupt_rejected: packets the fabric detected as corrupt (CRC or
            framing) and rejected during this job.
        link_dropped: packets lost in flight on faulty links during this
            job (invisible to receivers; recovered only by retransmit).
        aborted_phases: phases cut short by the per-phase cycle budget.
        shed: per-round instruction deferrals under load shedding --
            instructions held back because the surviving capacity could
            not seat them that round (they stay eligible for later
            rounds; only ``run_job(shed_to_capacity=True)`` sheds).
    """

    enqueued: int = 0
    undeliverable: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    spurious_results: int = 0
    timed_out: int = 0
    corrupt_rejected: int = 0
    link_dropped: int = 0
    aborted_phases: int = 0
    shed: int = 0


@dataclass
class JobResult:
    """Everything the control processor knows after a job completes.

    ``unassigned`` lists IDs that went unplaced (no reachable capacity)
    in *any* submission round and never later completed; ``missing`` is
    every submitted ID without a result, whatever the cause.
    """

    results: Dict[int, int]
    submitted: int
    rounds: int
    cycles: PhaseStats
    unassigned: List[int] = field(default_factory=list)
    missing: List[int] = field(default_factory=list)
    delivery: DeliveryStats = field(default_factory=DeliveryStats)

    @property
    def complete(self) -> bool:
        """True when every submitted instruction produced a result."""
        return len(self.results) == self.submitted

    def accuracy_against(self, expected: Dict[int, int]) -> float:
        """Fraction of expected results that arrived *and* are correct."""
        if not expected:
            return 1.0
        good = sum(
            1 for iid, value in expected.items() if self.results.get(iid) == value
        )
        return good / len(expected)


class JobTimeout(RuntimeError):
    """A phase exceeded its cycle budget.

    Retained for API compatibility: ``run_job`` no longer raises it --
    budget-exhausted phases are reported via
    ``JobResult.delivery.aborted_phases`` instead.
    """


class ControlProcessor:
    """Drives the grid through shift-in / compute / shift-out rounds.

    Args:
        grid: the NanoBox fabric.
        watchdog: optional heartbeat monitor polled every cycle.
        tick_hooks: callables invoked every cycle *before* the fabric
            steps -- the simulator uses these for scheduled cell kills and
            memory upsets.
        max_phase_cycles: per-phase safety budget.
        retry_backoff: geometric growth factor (>= 1) for the shift-out
            idle-patience window across retry rounds.
    """

    #: Idle cycles in a row that end a first-round shift-out phase.
    BASE_IDLE_STREAK = 3
    #: Upper bound on the backed-off idle-patience window.
    MAX_IDLE_STREAK = 48

    def __init__(
        self,
        grid: NanoBoxGrid,
        watchdog: Optional[Watchdog] = None,
        tick_hooks: Sequence[Callable[[], None]] = (),
        max_phase_cycles: int = 100_000,
        retry_backoff: float = 2.0,
    ) -> None:
        if retry_backoff < 1.0:
            raise ValueError(f"retry_backoff must be >= 1, got {retry_backoff}")
        self._grid = grid
        self._watchdog = watchdog
        self._hooks = tuple(tick_hooks)
        self._max_phase_cycles = max_phase_cycles
        self._retry_backoff = retry_backoff

    @property
    def grid(self) -> NanoBoxGrid:
        return self._grid

    def add_tick_hook(self, hook: Callable[[], None]) -> None:
        """Register an extra per-cycle hook (e.g. availability sampling)."""
        self._hooks = self._hooks + (hook,)

    # ----------------------------------------------------------- low level

    def _tick(self) -> None:
        for hook in self._hooks:
            hook()
        self._grid.step()
        if self._watchdog is not None:
            self._watchdog.poll()

    def tick(self, cycles: int = 1) -> None:
        """Advance the fabric ``cycles`` cycles with no new packet traffic.

        The same hooks -> step -> watchdog-poll loop every job phase
        runs, without shifting anything in or out.  Soak harnesses use
        this to age an idle fleet under fault injection.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        for _ in range(cycles):
            self._tick()

    # ----------------------------------------------------------- assignment

    def capacity(self) -> int:
        """Free memory words across reachable, in-service cells.

        The load-shedding bound: the most instructions one round can
        seat.  Quarantined, suspect, and retired cells contribute
        nothing (their heartbeats are silent, so they are not alive).
        """
        return sum(
            self._grid.free_capacity(coord)
            for coord in self._grid.alive_cells()
            if self._grid.reachable(*coord)
        )

    def assign(
        self, instructions: Sequence[JobInstruction]
    ) -> Tuple[Dict[int, Coord], List[int]]:
        """Spread instructions round-robin over reachable cells.

        Respects each cell's free memory capacity.  Returns the placement
        map and the IDs that could not be placed (no capacity anywhere).
        """
        targets = [
            coord
            for coord in sorted(self._grid.alive_cells())
            if self._grid.reachable(*coord)
        ]
        capacity = {
            coord: self._grid.free_capacity(coord) for coord in targets
        }
        placement: Dict[int, Coord] = {}
        unassigned: List[int] = []
        index = 0
        for iid, _op, _a, _b in instructions:
            placed = False
            for _ in range(len(targets)):
                coord = targets[index % len(targets)] if targets else None
                index += 1
                if coord is None:
                    break
                if capacity[coord] > 0:
                    capacity[coord] -= 1
                    placement[iid] = coord
                    placed = True
                    break
            if not placed:
                unassigned.append(iid)
        return placement, unassigned

    # -------------------------------------------------------------- phases

    def _build_shift_in_queues(
        self,
        instructions: Sequence[JobInstruction],
        placement: Dict[int, Coord],
    ) -> Tuple[Dict[int, Deque[InstructionPacket]], List[int]]:
        """Packetise placed instructions into per-column injection queues.

        Returns the queues and the IDs skipped because no alive top-row
        entry point exists for them (undeliverable this round).
        """
        queues: Dict[int, Deque[InstructionPacket]] = {}
        skipped: List[int] = []
        for iid, op, a, b in instructions:
            if iid not in placement:
                continue
            row, col = placement[iid]
            packet = InstructionPacket(
                dest_row=row,
                dest_col=col,
                instruction_id=iid,
                opcode=op,
                operand1=a,
                operand2=b,
            )
            injection = self._grid.injection_column(col)
            if injection is None:
                skipped.append(iid)  # no alive top-row entry this round
                continue
            queues.setdefault(injection, deque()).append(packet)
        return queues, skipped

    def _run_shift_in(
        self, queues: Dict[int, Deque[InstructionPacket]]
    ) -> Tuple[int, List[int], int, bool]:
        """Pump queued packets onto the edge buses until the fabric drains.

        Returns ``(cycles, sent_ids, undeliverable, aborted)``:
        ``sent_ids`` are the instructions actually injected (the only
        ones shift-out may wait for); ``undeliverable`` counts packets
        whose entry point died mid-phase; ``aborted`` flags a blown
        cycle budget.
        """
        self._grid.set_mode(CellMode.SHIFT_IN)
        cycles = 0
        sent: List[int] = []
        undeliverable = 0
        while True:
            for col, queue in queues.items():
                if queue and not self._grid.cp_bus_busy(col):
                    packet = queue[0]
                    try:
                        if self._grid.cp_send(packet):
                            queue.popleft()
                            sent.append(packet.instruction_id)
                    except RuntimeError:
                        # No alive top-row cell remains to inject through.
                        queue.popleft()
                        undeliverable += 1
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                undeliverable += sum(len(q) for q in queues.values())
                return cycles, sent, undeliverable, True
            if all(not q for q in queues.values()) and self._grid.idle():
                return cycles, sent, undeliverable, False

    def _run_compute(self) -> Tuple[int, bool]:
        self._grid.set_mode(CellMode.COMPUTE)
        cycles = 0
        idle_margin = 0
        while True:
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                return cycles, True
            if self._grid.total_pending_instructions() == 0:
                # One extra memory sweep of margin, mirroring the paper's
                # "control processor then waits for a specified number of
                # cycles" discipline.
                idle_margin += 1
                if idle_margin >= 2:
                    return cycles, False
            else:
                idle_margin = 0

    def _run_shift_out(
        self, expected_count: int, idle_streak_limit: int = BASE_IDLE_STREAK
    ) -> Tuple[int, bool]:
        self._grid.set_mode(CellMode.SHIFT_OUT)
        cycles = 0
        idle_streak = 0
        while True:
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                return cycles, True
            if len(self._grid.cp_inbox) >= expected_count:
                return cycles, False
            # An idle fabric can only restart if a cell pops a completed
            # word on the very next cycle; several idle cycles in a row
            # mean every reachable result has drained.  (Words that
            # memory upsets mark "completed" *behind* a cell's shift-out
            # pointer are unreachable until the next round, so waiting on
            # a zero completed-count would hang.)  Retry rounds widen
            # the streak limit so straggling results on stalled or
            # detouring links still make it home.
            if self._grid.idle():
                idle_streak += 1
                if idle_streak >= idle_streak_limit:
                    return cycles, False
            else:
                idle_streak = 0

    # ----------------------------------------------------------------- jobs

    def _drain_inbox(
        self,
        results: Dict[int, int],
        delivery: DeliveryStats,
        known_ids: Set[int],
    ) -> None:
        """Accept results, suppressing duplicates and unknown IDs.

        Duplicates collapse last-writer-wins: under memory corruption a
        word can pop with a forged instruction ID, and a later genuine
        recomputation of that instruction must be able to overwrite the
        forgery.  Results whose ID matches no submitted instruction are
        rejected outright.
        """
        while self._grid.cp_inbox:
            packet = self._grid.cp_inbox.popleft()
            iid = packet.instruction_id
            if iid not in known_ids:
                delivery.spurious_results += 1
                continue
            if iid in results:
                delivery.duplicates += 1
            results[iid] = packet.result

    @staticmethod
    def _record_job(
        obs,
        stats: PhaseStats,
        delivery: DeliveryStats,
        rounds: int,
        delivered: int,
    ) -> None:
        """Post one job's transport tallies to the active observer.

        Every ``DeliveryStats`` counter field has a ``control.*`` metrics
        twin, so campaign-scale runs aggregate transport behaviour across
        jobs without hand-summing per-job dataclasses.  No-op (shared
        null instruments) when no observer is installed.
        """
        metrics = obs.metrics
        metrics.counter("control.jobs").inc()
        metrics.counter("control.rounds").inc(rounds)
        metrics.counter("control.delivered").inc(delivered)
        metrics.counter("control.cycles.shift_in").inc(stats.shift_in)
        metrics.counter("control.cycles.compute").inc(stats.compute)
        metrics.counter("control.cycles.shift_out").inc(stats.shift_out)
        metrics.counter("control.enqueued").inc(delivery.enqueued)
        metrics.counter("control.undeliverable").inc(delivery.undeliverable)
        metrics.counter("control.retransmissions").inc(
            delivery.retransmissions
        )
        metrics.counter("control.duplicates").inc(delivery.duplicates)
        metrics.counter("control.spurious_results").inc(
            delivery.spurious_results
        )
        metrics.counter("control.timed_out").inc(delivery.timed_out)
        metrics.counter("control.corrupt_rejected").inc(
            delivery.corrupt_rejected
        )
        metrics.counter("control.link_dropped").inc(delivery.link_dropped)
        metrics.counter("control.aborted_phases").inc(delivery.aborted_phases)
        metrics.counter("control.shed").inc(delivery.shed)
        if obs.enabled:
            obs.trace.emit(
                "job_end",
                source="control",
                rounds=rounds,
                delivered=delivered,
                cycles=stats.total,
            )

    def run_job(
        self,
        instructions: Sequence[JobInstruction],
        max_rounds: int = 3,
        shed_to_capacity: bool = False,
    ) -> JobResult:
        """Execute a job, retrying missing instructions on later rounds.

        Never raises for fabric-induced failures (dead cells, dropped or
        corrupted packets, blown phase budgets): the returned
        :class:`JobResult` carries per-cause accounting in ``delivery``.

        Between rounds the watchdog's quarantine probe protocol runs (a
        no-op unless its lifecycle policy enables probing), so cells
        re-admitted mid-job rejoin the next round's assignment.

        Args:
            instructions: ``(instruction_id, opcode, operand1, operand2)``
                tuples with unique IDs.
            max_rounds: total submission rounds (1 = no retries).
            shed_to_capacity: cap each round's submission at the
                surviving fabric capacity instead of letting the
                overflow churn as unassigned; held-back instructions
                stay eligible for later rounds and are counted in
                ``delivery.shed``.
        """
        ids = [iid for iid, *_ in instructions]
        if len(set(ids)) != len(ids):
            raise ValueError("instruction IDs must be unique within a job")
        known_ids = set(ids)

        obs = get_observer()
        if obs.enabled:
            obs.trace.emit(
                "job_start",
                source="control",
                submitted=len(instructions),
                max_rounds=max_rounds,
                shed_to_capacity=shed_to_capacity,
            )
        stats = PhaseStats()
        delivery = DeliveryStats()
        results: Dict[int, int] = {}
        remaining: List[JobInstruction] = list(instructions)
        attempts: Dict[int, int] = {}
        unassigned_ever: Set[int] = set()
        rounds = 0
        corrupt_base = getattr(self._grid, "corrupt_rejects", 0)
        dropped_base = getattr(self._grid, "link_dropped", 0)
        idle_limit = float(self.BASE_IDLE_STREAK)

        while remaining and rounds < max_rounds:
            rounds += 1
            submission = remaining
            if shed_to_capacity:
                cap = self.capacity()
                if cap < len(remaining):
                    submission = remaining[:cap]
                    delivery.shed += len(remaining) - cap
            placement, unassigned = self.assign(submission)
            unassigned_ever.update(unassigned)

            queues, skipped = self._build_shift_in_queues(submission, placement)
            delivery.undeliverable += len(skipped)

            with obs.metrics.time("control.phase.shift_in"):
                cycles, sent, undeliverable, aborted = self._run_shift_in(queues)
            stats.shift_in += cycles
            delivery.enqueued += len(sent)
            delivery.undeliverable += undeliverable
            delivery.aborted_phases += int(aborted)
            for iid in sent:
                prior = attempts.get(iid, 0)
                delivery.retransmissions += int(prior > 0)
                attempts[iid] = prior + 1
                if prior > 0 and obs.enabled:
                    obs.trace.emit(
                        "packet_retransmit",
                        source="control",
                        instruction_id=iid,
                        round=rounds,
                        attempt=prior + 1,
                    )

            with obs.metrics.time("control.phase.compute"):
                cycles, aborted = self._run_compute()
            stats.compute += cycles
            delivery.aborted_phases += int(aborted)

            with obs.metrics.time("control.phase.shift_out"):
                cycles, aborted = self._run_shift_out(
                    expected_count=len(sent),
                    idle_streak_limit=int(min(idle_limit, self.MAX_IDLE_STREAK)),
                )
            stats.shift_out += cycles
            delivery.aborted_phases += int(aborted)

            self._drain_inbox(results, delivery, known_ids)
            delivery.timed_out += sum(1 for iid in sent if iid not in results)
            remaining = [
                instr for instr in remaining if instr[0] not in results
            ]
            idle_limit *= self._retry_backoff
            if self._watchdog is not None:
                # Canary-probe quarantined cells between rounds; cells
                # that pass their budget rejoin the next assignment.
                # No-op (and zero RNG draws) when probing is disabled.
                self._watchdog.probe_quarantined()

        delivery.corrupt_rejected = (
            getattr(self._grid, "corrupt_rejects", 0) - corrupt_base
        )
        delivery.link_dropped = (
            getattr(self._grid, "link_dropped", 0) - dropped_base
        )
        self._record_job(obs, stats, delivery, rounds, len(results))
        return JobResult(
            results=results,
            submitted=len(instructions),
            rounds=rounds,
            cycles=stats,
            unassigned=sorted(
                iid for iid in unassigned_ever if iid not in results
            ),
            missing=sorted(
                iid for iid, *_ in instructions if iid not in results
            ),
            delivery=delivery,
        )
