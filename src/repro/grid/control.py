"""The conventional CMOS control processor (paper Section 3).

"The control microprocessor packages data into a form the NanoBox
Processor Grid understands, stores that data in its CMOS memory, then
feeds the data to the NanoBox Processor Grid by a bus along one edge of
the grid" -- and, because packets carry unique instruction IDs, it can
reassemble results arriving in any order (Section 3.2.3).

The retry protocol implemented here answers the paper's future-work
question of "how the control microprocessor should reroute data assigned
to a failed processor cell": after shift-out, any instruction whose result
never arrived is resubmitted to the still-reachable cells.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cell.cell import CellMode
from repro.grid.grid import Coord, NanoBoxGrid
from repro.grid.packet import InstructionPacket
from repro.grid.watchdog import Watchdog

#: One job instruction: (instruction_id, opcode, operand1, operand2).
JobInstruction = Tuple[int, int, int, int]


@dataclass
class PhaseStats:
    """Cycle accounting for one mode phase of one round."""

    shift_in: int = 0
    compute: int = 0
    shift_out: int = 0

    @property
    def total(self) -> int:
        return self.shift_in + self.compute + self.shift_out


@dataclass
class JobResult:
    """Everything the control processor knows after a job completes."""

    results: Dict[int, int]
    submitted: int
    rounds: int
    cycles: PhaseStats
    unassigned: List[int] = field(default_factory=list)
    missing: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every submitted instruction produced a result."""
        return len(self.results) == self.submitted

    def accuracy_against(self, expected: Dict[int, int]) -> float:
        """Fraction of expected results that arrived *and* are correct."""
        if not expected:
            return 1.0
        good = sum(
            1 for iid, value in expected.items() if self.results.get(iid) == value
        )
        return good / len(expected)


class JobTimeout(RuntimeError):
    """A phase exceeded its cycle budget."""


class ControlProcessor:
    """Drives the grid through shift-in / compute / shift-out rounds.

    Args:
        grid: the NanoBox fabric.
        watchdog: optional heartbeat monitor polled every cycle.
        tick_hooks: callables invoked every cycle *before* the fabric
            steps -- the simulator uses these for scheduled cell kills and
            memory upsets.
        max_phase_cycles: per-phase safety budget.
    """

    def __init__(
        self,
        grid: NanoBoxGrid,
        watchdog: Optional[Watchdog] = None,
        tick_hooks: Sequence[Callable[[], None]] = (),
        max_phase_cycles: int = 100_000,
    ) -> None:
        self._grid = grid
        self._watchdog = watchdog
        self._hooks = tuple(tick_hooks)
        self._max_phase_cycles = max_phase_cycles

    @property
    def grid(self) -> NanoBoxGrid:
        return self._grid

    # ----------------------------------------------------------- low level

    def _tick(self) -> None:
        for hook in self._hooks:
            hook()
        self._grid.step()
        if self._watchdog is not None:
            self._watchdog.poll()

    # ----------------------------------------------------------- assignment

    def assign(
        self, instructions: Sequence[JobInstruction]
    ) -> Tuple[Dict[int, Coord], List[int]]:
        """Spread instructions round-robin over reachable cells.

        Respects each cell's free memory capacity.  Returns the placement
        map and the IDs that could not be placed (no capacity anywhere).
        """
        targets = [
            coord
            for coord in sorted(self._grid.alive_cells())
            if self._grid.reachable(*coord)
        ]
        capacity = {
            coord: self._grid.cell(*coord).memory.n_words
            - self._grid.cell(*coord).memory.occupancy()
            for coord in targets
        }
        placement: Dict[int, Coord] = {}
        unassigned: List[int] = []
        index = 0
        for iid, _op, _a, _b in instructions:
            placed = False
            for _ in range(len(targets)):
                coord = targets[index % len(targets)] if targets else None
                index += 1
                if coord is None:
                    break
                if capacity[coord] > 0:
                    capacity[coord] -= 1
                    placement[iid] = coord
                    placed = True
                    break
            if not placed:
                unassigned.append(iid)
        return placement, unassigned

    # -------------------------------------------------------------- phases

    def _run_shift_in(
        self,
        instructions: Sequence[JobInstruction],
        placement: Dict[int, Coord],
    ) -> int:
        self._grid.set_mode(CellMode.SHIFT_IN)
        queues: Dict[int, deque] = {}
        for iid, op, a, b in instructions:
            if iid not in placement:
                continue
            row, col = placement[iid]
            packet = InstructionPacket(
                dest_row=row,
                dest_col=col,
                instruction_id=iid,
                opcode=op,
                operand1=a,
                operand2=b,
            )
            injection = self._grid.injection_column(col)
            if injection is None:
                continue  # no alive top-row entry: unrecoverable this round
            queues.setdefault(injection, deque()).append(packet)

        cycles = 0
        while True:
            for col, queue in queues.items():
                if queue and not self._grid.cp_bus_busy(col):
                    if self._grid.cp_send(queue[0]):
                        queue.popleft()
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                raise JobTimeout(f"shift-in exceeded {self._max_phase_cycles} cycles")
            if all(not q for q in queues.values()) and self._grid.idle():
                return cycles

    def _run_compute(self) -> int:
        self._grid.set_mode(CellMode.COMPUTE)
        cycles = 0
        idle_margin = 0
        while True:
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                raise JobTimeout(f"compute exceeded {self._max_phase_cycles} cycles")
            if self._grid.total_pending_instructions() == 0:
                # One extra memory sweep of margin, mirroring the paper's
                # "control processor then waits for a specified number of
                # cycles" discipline.
                idle_margin += 1
                if idle_margin >= 2:
                    return cycles
            else:
                idle_margin = 0

    def _run_shift_out(self, expected_count: int) -> int:
        self._grid.set_mode(CellMode.SHIFT_OUT)
        cycles = 0
        idle_streak = 0
        while True:
            self._tick()
            cycles += 1
            if cycles > self._max_phase_cycles:
                raise JobTimeout(f"shift-out exceeded {self._max_phase_cycles} cycles")
            if len(self._grid.cp_inbox) >= expected_count:
                return cycles
            # An idle fabric can only restart if a cell pops a completed
            # word on the very next cycle; three idle cycles in a row
            # means every reachable result has drained.  (Words that
            # memory upsets mark "completed" *behind* a cell's shift-out
            # pointer are unreachable until the next round, so waiting on
            # a zero completed-count would hang.)
            if self._grid.idle():
                idle_streak += 1
                if idle_streak >= 3:
                    return cycles
            else:
                idle_streak = 0

    # ----------------------------------------------------------------- jobs

    def run_job(
        self,
        instructions: Sequence[JobInstruction],
        max_rounds: int = 3,
    ) -> JobResult:
        """Execute a job, retrying missing instructions on later rounds.

        Args:
            instructions: ``(instruction_id, opcode, operand1, operand2)``
                tuples with unique IDs.
            max_rounds: total submission rounds (1 = no retries).
        """
        ids = [iid for iid, *_ in instructions]
        if len(set(ids)) != len(ids):
            raise ValueError("instruction IDs must be unique within a job")

        stats = PhaseStats()
        results: Dict[int, int] = {}
        remaining: List[JobInstruction] = list(instructions)
        unassigned_final: List[int] = []
        rounds = 0

        while remaining and rounds < max_rounds:
            rounds += 1
            placement, unassigned = self._run_round(remaining, stats, results)
            unassigned_final = unassigned
            remaining = [
                instr for instr in remaining if instr[0] not in results
            ]

        return JobResult(
            results=results,
            submitted=len(instructions),
            rounds=rounds,
            cycles=stats,
            unassigned=unassigned_final,
            missing=sorted(
                iid for iid, *_ in instructions if iid not in results
            ),
        )

    def _run_round(
        self,
        instructions: Sequence[JobInstruction],
        stats: PhaseStats,
        results: Dict[int, int],
    ) -> Tuple[Dict[int, Coord], List[int]]:
        placement, unassigned = self.assign(instructions)
        stats.shift_in += self._run_shift_in(instructions, placement)
        stats.compute += self._run_compute()
        stats.shift_out += self._run_shift_out(expected_count=len(placement))
        while self._grid.cp_inbox:
            packet = self._grid.cp_inbox.popleft()
            results[packet.instruction_id] = packet.result
        return placement, unassigned
