"""Compiled kernel tier: the raw-speed backend below the NumPy engine.

Three evaluation tiers share one contract -- bit- and stream-identical
``TrialResult``s for the same ``(seed, workload, trial)``:

* **scalar** -- the reference object graph, one instruction at a time;
* **batched** -- the vectorized NumPy engine (:mod:`repro.alu.batched`);
* **compiled** -- a lowered plan (:mod:`repro.kernels.plan`) run by a
  native executor: ``numba.njit`` over the reference interpreter when
  Numba is installed, otherwise a generated-and-cached C extension
  loaded via ``ctypes`` (:mod:`repro.kernels.cbuild`).

``auto`` resolves to the fastest tier available at runtime; explicit
``compiled`` requests degrade to ``batched`` with a one-time stderr
warning when no native provider is live.  Selection is surfaced as
``--backend`` on the sweep/grid/chaos/lifecycle CLIs and the
``REPRO_BACKEND`` environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.kernels.engine import (
    AcceleratedUnit,
    CompiledEngine,
    accelerate_unit,
    build_compiled_unit,
)
from repro.kernels.plan import KernelPlan, build_plan
from repro.kernels.providers import (
    KernelProvider,
    get_provider,
    provider_failures,
    reset_provider_cache,
    warn_compiled_unavailable,
)

#: The backend seam's vocabulary, in increasing order of ambition.
BACKENDS = ("scalar", "batched", "compiled", "auto")

#: Environment default for ``--backend`` (CLI flags still win).
BACKEND_ENV = "REPRO_BACKEND"


def backend_from_env(default: Optional[str] = None) -> Optional[str]:
    """The ``REPRO_BACKEND`` selection, validated; ``default`` if unset."""
    value = os.environ.get(BACKEND_ENV)
    if not value:
        return default
    if value not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={value!r} is not a backend; valid: {BACKENDS}"
        )
    return value


def resolve_backend(
    backend: Optional[str], batched: Optional[bool] = None
) -> str:
    """Canonicalise a backend request.

    ``backend=None`` keeps pre-compiled-tier call sites working: it maps
    the legacy ``batched`` boolean (``True`` -> ``"batched"``,
    ``False``/``None`` -> ``"scalar"``).  ``"auto"`` stays symbolic here;
    it is resolved per *unit* (compiled when the unit lowers and a
    provider is live, batched otherwise).
    """
    if backend is None:
        return "batched" if batched else "scalar"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; valid: {BACKENDS}"
        )
    return backend


__all__ = [
    "AcceleratedUnit",
    "BACKENDS",
    "BACKEND_ENV",
    "CompiledEngine",
    "KernelPlan",
    "KernelProvider",
    "accelerate_unit",
    "backend_from_env",
    "build_compiled_unit",
    "build_plan",
    "get_provider",
    "provider_failures",
    "reset_provider_cache",
    "resolve_backend",
    "warn_compiled_unavailable",
]
