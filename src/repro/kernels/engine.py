"""Campaign-facing compiled evaluation engine.

:class:`CompiledEngine` is the third tier below the scalar unit and the
batched NumPy engine: same validation, same results, but evaluation runs
through a provider's plan executor (Numba-jitted interpreter or the
generated C kernel) directly over *packed* ``uint64`` fault words.  The
batched tier pays ``unpack_flags`` -- an (n, site_count) uint8
materialisation -- plus dozens of NumPy kernel launches per trial; the
compiled tier reads mask bits in place and retires a whole suite in one
native call.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.alu.base import ALUResult, FaultableUnit
from repro.faults.packing import WORD_DTYPE, int_to_words, words_for_sites
from repro.kernels.plan import KernelPlan, build_plan
from repro.kernels.providers import KernelProvider, get_provider
from repro.obs import get_observer

_RESULT_MASK = 0xFF


class CompiledEngine:
    """One lowered unit bound to the process's kernel provider."""

    def __init__(self, plan: KernelPlan, provider: KernelProvider) -> None:
        self._plan = plan
        self._eval = provider.eval_fn
        self.provider_name = provider.name
        self._site_count = plan.site_count
        self._n_words = words_for_sites(plan.site_count)
        self._scratch = np.zeros(plan.scratch_size, dtype=np.uint8)
        self._internal_map = plan.ipool[
            plan.header[11] : plan.header[11] + 8
        ]

    @property
    def site_count(self) -> int:
        return self._site_count

    @property
    def n_words(self) -> int:
        """Packed ``uint64`` words per mask row for this unit."""
        return self._n_words

    def bundles_words(
        self,
        ops: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        words: np.ndarray,
    ) -> np.ndarray:
        """9-bit result bundles for a batch over packed mask words.

        Args:
            ops: ``(n,)`` architectural 3-bit opcodes.
            a, b: ``(n,)`` 8-bit operands.
            words: ``(n, n_words)`` packed ``uint64`` mask rows, exactly
                as drawn by ``MaskPolicy.generate_batch``.
        """
        ops = np.ascontiguousarray(ops, dtype=np.int64)
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if np.any((ops < 0) | (ops > 7)):
            raise ValueError("opcode out of 3-bit range in batch")
        internal = self._internal_map[ops]
        if np.any(internal < 0):
            bad = int(ops[internal < 0][0])
            raise ValueError(f"invalid opcode {bad:#05b} in batch")
        if np.any((a < 0) | (a > _RESULT_MASK)):
            raise ValueError("operand a out of 8-bit range in batch")
        if np.any((b < 0) | (b > _RESULT_MASK)):
            raise ValueError("operand b out of 8-bit range in batch")
        n = ops.shape[0]
        if words.shape != (n, self._n_words):
            raise ValueError(
                f"words shape {words.shape} != ({n}, {self._n_words})"
            )
        flat = np.ascontiguousarray(
            words.astype(WORD_DTYPE, copy=False)
        ).reshape(-1).view(np.uint64)
        out = np.empty(n, dtype=np.int64)
        self._eval(
            self._plan.header, self._plan.ipool, self._plan.bpool,
            ops, a, b, flat, n, self._n_words, out, self._scratch,
        )
        return out

    def values_words(
        self,
        ops: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        words: np.ndarray,
    ) -> np.ndarray:
        """8-bit result values (the campaign's scoring quantity)."""
        return self.bundles_words(ops, a, b, words) & _RESULT_MASK


def build_compiled_unit(unit) -> Optional[CompiledEngine]:
    """Compile a campaign compute unit, or return ``None`` to fall back.

    ``None`` means either no provider is live on this machine (no Numba,
    no C compiler) or the unit has no lowered form (the same family the
    batched tier rejects).  Callers degrade to batched/scalar; results
    are identical on every tier.
    """
    provider = get_provider()
    if provider is None:
        return None
    plan = build_plan(unit)
    if plan is None:
        return None
    engine = CompiledEngine(plan, provider)
    obs = get_observer()
    obs.metrics.counter("kernel.engines_built").inc()
    # First-call warmup outside every campaign timer: with Numba the
    # per-signature specialisation compiles here, not inside a trial.
    with obs.metrics.time("kernel.warmup"):
        engine.bundles_words(
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.zeros((1, engine.n_words), dtype=WORD_DTYPE),
        )
    return engine


class AcceleratedUnit(FaultableUnit):
    """A scalar ``compute`` facade over a :class:`CompiledEngine`.

    Lets grid cells (which compute one instruction at a time against a
    per-cell mask stream) ride the compiled tier: each call is a batch
    of one through the native kernel.  Everything else -- site layout,
    storage images, probing -- delegates to the wrapped unit, and any
    input the kernel does not model (invalid opcodes, out-of-range
    operands or masks) is delegated wholesale so error behaviour stays
    canonical.
    """

    def __init__(self, unit: FaultableUnit, engine: CompiledEngine) -> None:
        self._unit = unit
        self._engine = engine
        self._ops = np.zeros(1, dtype=np.int64)
        self._a = np.zeros(1, dtype=np.int64)
        self._b = np.zeros(1, dtype=np.int64)
        self._words = np.zeros((1, engine.n_words), dtype=WORD_DTYPE)

    @property
    def wrapped(self) -> FaultableUnit:
        """The scalar unit this facade accelerates."""
        return self._unit

    @property
    def site_space(self):
        return self._unit.site_space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        if not (
            0 <= op <= 7
            and 0 <= a <= 0xFF
            and 0 <= b <= 0xFF
            and fault_mask >= 0
            and fault_mask >> self._unit.site_count == 0
        ):
            return self._unit.compute(op, a, b, fault_mask=fault_mask)
        self._ops[0] = op
        self._a[0] = a
        self._b[0] = b
        self._words[0] = int_to_words(fault_mask, self._unit.site_count)
        try:
            bundle = int(
                self._engine.bundles_words(
                    self._ops, self._a, self._b, self._words
                )[0]
            )
        except ValueError:
            # e.g. an opcode with no internal encoding: the scalar unit
            # owns the canonical error message.
            return self._unit.compute(op, a, b, fault_mask=fault_mask)
        return ALUResult.from_bundle(bundle)

    def __getattr__(self, name: str):
        return getattr(self._unit, name)


def accelerate_unit(unit: FaultableUnit, backend: str = "auto") -> FaultableUnit:
    """Wrap a unit so scalar ``compute`` calls run on the compiled tier.

    ``backend`` follows the campaign seam: ``"scalar"``/``"batched"``
    return the unit unchanged (there is no per-call batching to exploit
    here), ``"auto"`` wraps when a compiled engine is available and
    silently returns the original otherwise, ``"compiled"`` warns once
    on stderr before degrading.
    """
    from repro.kernels import BACKENDS
    from repro.kernels.providers import warn_compiled_unavailable

    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; valid: {BACKENDS}"
        )
    if backend in ("scalar", "batched"):
        return unit
    engine = build_compiled_unit(unit)
    if engine is None:
        if backend == "compiled":
            warn_compiled_unavailable("no provider or unsupported unit")
        return unit
    return AcceleratedUnit(unit, engine)
