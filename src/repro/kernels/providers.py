"""Compiled-kernel provider chain: Numba first, generated C second.

A *provider* is a named evaluator implementing the plan-eval signature
of :func:`repro.kernels.interp.make_eval`.  Probing order:

1. **numba** -- ``numba.njit`` over the reference interpreter, when the
   optional dependency is importable and compiles;
2. **cc** -- the generated C kernel (:mod:`repro.kernels.cbuild`), when
   a C compiler is on PATH;
3. none -- the compiled tier is unavailable and callers degrade to the
   batched NumPy tier (silently under ``auto``; with a one-time stderr
   warning when ``compiled`` was requested explicitly).

Every probe failure is captured, never raised: a broken Numba install
or missing toolchain can only cost speed, not correctness.  Probing is
cached per process; tests monkeypatch :func:`_import_numba` /
:func:`_build_cc` and call :func:`reset_provider_cache` to exercise
each degradation path.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs import get_observer


@dataclass(frozen=True)
class KernelProvider:
    """One live compiled-tier executor."""

    name: str  # "numba" | "cc"
    eval_fn: Callable
    compile_seconds: float


#: Sentinel distinguishing "not probed yet" from "probed, unavailable".
_UNPROBED = object()

_provider = _UNPROBED
_failures: List[str] = []
_warned = False


def _import_numba():
    """Import hook isolated for tests (mocked away to simulate absence)."""
    import numba

    return numba


def _build_numba() -> KernelProvider:
    """Provider 1: the reference interpreter under ``numba.njit``."""
    numba = _import_numba()
    from repro.kernels.interp import make_eval

    start = time.perf_counter()
    # Plain njit: closure-captured dispatchers preclude on-disk caching,
    # and the per-process compile lands on the jit_compile timer anyway.
    eval_fn = make_eval(numba.njit)
    # Force a real compile now (first engine warmup would otherwise hide
    # a broken toolchain until deep inside a campaign).
    from repro.kernels.cbuild import self_test

    self_test(eval_fn)
    return KernelProvider(
        name="numba",
        eval_fn=eval_fn,
        compile_seconds=time.perf_counter() - start,
    )


def _build_cc() -> KernelProvider:
    """Provider 2: the generated-and-cached C extension via ctypes."""
    from repro.kernels.cbuild import build_library, load_eval, self_test
    from repro.kernels.csrc import c_source

    start = time.perf_counter()
    eval_fn = load_eval(build_library(c_source()))
    self_test(eval_fn)
    return KernelProvider(
        name="cc",
        eval_fn=eval_fn,
        compile_seconds=time.perf_counter() - start,
    )


def get_provider() -> Optional[KernelProvider]:
    """The process's compiled-tier provider, or ``None`` if unavailable.

    The first call probes (and JIT-compiles); the verdict is cached.
    Compile time lands on the ``kernel.jit_compile`` observability timer
    -- *outside* every campaign trial timer, so benchmark numbers never
    include first-call warmup.
    """
    global _provider
    if _provider is _UNPROBED:
        _provider = _probe()
    return None if _provider is None else _provider


def _probe() -> Optional[KernelProvider]:
    obs = get_observer()
    for name, builder in (("numba", _build_numba), ("cc", _build_cc)):
        try:
            with obs.metrics.time("kernel.jit_compile"):
                provider = builder()
        except Exception as exc:  # noqa: BLE001 - any failure means "skip"
            _failures.append(f"{name}: {exc!r}")
            continue
        obs.metrics.counter(f"kernel.provider.{provider.name}").inc()
        return provider
    obs.metrics.counter("kernel.provider.none").inc()
    return None


def provider_failures() -> List[str]:
    """Why each probed provider was rejected (diagnostics/tests)."""
    return list(_failures)


def reset_provider_cache() -> None:
    """Forget the probe verdict and warning state (tests only)."""
    global _provider, _warned
    _provider = _UNPROBED
    _failures.clear()
    _warned = False


def warn_compiled_unavailable(reason: str = "") -> None:
    """One-time stderr notice that an explicit ``compiled`` request fell
    back to the batched tier.  ``auto`` selection never calls this."""
    global _warned
    if _warned:
        return
    _warned = True
    detail = f" ({reason})" if reason else ""
    print(
        "repro.kernels: compiled backend unavailable"
        f"{detail}; falling back to the batched NumPy tier. "
        "Results are bit-identical, only slower.",
        file=sys.stderr,
    )
