"""Generated C source for the compiled kernel tier.

A transliteration of :mod:`repro.kernels.interp` -- same plan format,
same arithmetic, same evaluation order -- compiled once per machine by
:mod:`repro.kernels.cbuild` and called through ``ctypes``.  The ABI is a
single entry point:

.. code-block:: c

   void repro_eval_batch(const int64_t *header, const int64_t *ipool,
                         const uint8_t *bpool, const int64_t *ops,
                         const int64_t *va, const int64_t *vb,
                         const uint64_t *words, int64_t n,
                         int64_t n_words, int64_t *out, uint8_t *scratch);

All layout constants are injected from :mod:`repro.kernels.plan` at
format time, so the two executors can never drift on the encoding.
"""

from __future__ import annotations

from repro.kernels import plan as _p

_TEMPLATE = r"""
#include <stdint.h>

#define KERNEL_ABI_VERSION {abi_version}

static int64_t bit_at(const uint64_t *words, int64_t wb, int64_t site) {{
    return (int64_t)((words[wb + (site >> 6)] >> (site & 63)) & 1u);
}}

static int64_t lut_read(const int64_t *ipool, const uint8_t *bpool,
                        const uint64_t *words, int64_t wb, int64_t lut,
                        int64_t base, int64_t addr) {{
    int64_t scheme = ipool[lut];
    int64_t flip = 0;
    if (scheme == {LUT_IDENTITY}) {{
        flip = bit_at(words, wb, base + addr);
    }} else if (scheme == {LUT_REPETITION}) {{
        int64_t copies = ipool[lut + 4];
        int64_t pos = ipool[lut + 5] + addr * copies;
        int64_t ones = 0;
        for (int64_t c = 0; c < copies; c++)
            ones += bit_at(words, wb, base + ipool[pos + c]);
        if (ones > copies / 2) flip = 1;
    }} else {{
        int64_t block_size = ipool[lut + 4];
        int64_t code_bits = ipool[lut + 5];
        int64_t block = addr / block_size;
        int64_t payload = addr - block * block_size;
        int64_t offset = ipool[ipool[lut + 6] + block];
        int64_t syndrome = 0;
        for (int64_t j = 0; j < code_bits; j++)
            if (bit_at(words, wb, base + offset + j) != 0)
                syndrome ^= j + 1;
        int64_t data_col = ipool[ipool[lut + 7] + payload];
        int64_t raw = bit_at(words, wb, base + offset + data_col);
        int64_t corrector = 0;
        if (syndrome != 0) {{
            if (scheme == {LUT_HAMMING_FP}) corrector = 1;
            else if (bpool[ipool[lut + 8] + syndrome] != 0) corrector = 1;
            else if (syndrome - 1 == data_col) corrector = 1;
        }}
        flip = raw ^ corrector;
    }}
    return (int64_t)bpool[ipool[lut + 2] + addr] ^ flip;
}}

static int64_t netlist_eval(const int64_t *ipool, const uint64_t *words,
                            int64_t wb, int64_t net, int64_t base,
                            int64_t v0, int64_t v1, int64_t v2,
                            uint8_t *scratch, int64_t inbase) {{
    int64_t n_gates = ipool[net + 1];
    int64_t p = ipool[net + 2];
    int64_t n_inputs = ipool[net + 3];
    int64_t invar = ipool[net + 4];
    for (int64_t k = 0; k < n_inputs; k++) {{
        int64_t var = ipool[invar + 2 * k];
        int64_t bit_index = ipool[invar + 2 * k + 1];
        int64_t source = var == 0 ? v0 : (var == 1 ? v1 : v2);
        scratch[inbase + k] = (uint8_t)((source >> bit_index) & 1);
    }}
    for (int64_t g = 0; g < n_gates; g++) {{
        int64_t gate = ipool[p];
        int64_t n_src = ipool[p + 1];
        p += 2;
        int64_t kind = ipool[p];
        int64_t index = ipool[p + 1];
        p += 2;
        int64_t value;
        if (kind == {SRC_GATE}) value = scratch[index];
        else if (kind == {SRC_INPUT}) value = scratch[inbase + index];
        else value = index != 0 ? 1 : 0;
        if (gate == {GATE_NOT}) {{
            value ^= 1;
            p += 2 * (n_src - 1);
        }} else if (gate == {GATE_BUF}) {{
            p += 2 * (n_src - 1);
        }} else {{
            for (int64_t s = 1; s < n_src; s++) {{
                kind = ipool[p];
                index = ipool[p + 1];
                p += 2;
                int64_t other;
                if (kind == {SRC_GATE}) other = scratch[index];
                else if (kind == {SRC_INPUT}) other = scratch[inbase + index];
                else other = index != 0 ? 1 : 0;
                if (gate == {GATE_AND} || gate == {GATE_NAND}) value &= other;
                else if (gate == {GATE_OR} || gate == {GATE_NOR}) value |= other;
                else value ^= other;
            }}
            if (gate == {GATE_NAND} || gate == {GATE_NOR}) value ^= 1;
        }}
        scratch[g] = (uint8_t)(value ^ bit_at(words, wb, base + g));
    }}
    int64_t out_off = ipool[net + 5];
    int64_t n_out = ipool[net + 6];
    int64_t bundle = 0;
    for (int64_t o = 0; o < n_out; o++) {{
        int64_t kind = ipool[out_off + 2 * o];
        int64_t index = ipool[out_off + 2 * o + 1];
        int64_t value;
        if (kind == {SRC_GATE}) value = scratch[index];
        else if (kind == {SRC_INPUT}) value = scratch[inbase + index];
        else value = index != 0 ? 1 : 0;
        bundle |= value << o;
    }}
    return bundle;
}}

static int64_t core_eval(const int64_t *ipool, const uint8_t *bpool,
                         const uint64_t *words, int64_t wb, int64_t core,
                         int64_t base, int64_t op, int64_t internal,
                         int64_t a, int64_t b, uint8_t *scratch,
                         int64_t inbase) {{
    if (ipool[core] == {NODE_LUT}) {{
        int64_t result_lut = ipool[core + 1];
        int64_t carry_lut = ipool[core + 2];
        int64_t r_off = ipool[core + 3];
        int64_t c_off = ipool[core + 4];
        int64_t width = ipool[core + 5];
        int64_t op_addr = internal << 3;
        int64_t carry = 0;
        int64_t value = 0;
        for (int64_t s = 0; s < width; s++) {{
            int64_t addr = ((a >> s) & 1) | (((b >> s) & 1) << 1)
                | (carry << 2) | op_addr;
            int64_t bit = lut_read(ipool, bpool, words, wb, result_lut,
                                   base + ipool[r_off + s], addr);
            carry = lut_read(ipool, bpool, words, wb, carry_lut,
                             base + ipool[c_off + s], addr);
            value |= bit << s;
        }}
        return value | (carry << 8);
    }}
    return netlist_eval(ipool, words, wb, ipool[core + 1], base, a, b, op,
                        scratch, inbase);
}}

static int64_t voter_eval(const int64_t *ipool, const uint8_t *bpool,
                          const uint64_t *words, int64_t wb, int64_t voter,
                          int64_t base, int64_t x, int64_t y, int64_t z,
                          uint8_t *scratch, int64_t inbase) {{
    if (ipool[voter] == {NODE_LUT}) {{
        int64_t lut = ipool[voter + 1];
        int64_t offsets = ipool[voter + 2];
        int64_t width = ipool[voter + 3];
        int64_t out = 0;
        for (int64_t s = 0; s < width; s++) {{
            int64_t addr = ((x >> s) & 1) | (((y >> s) & 1) << 1)
                | (((z >> s) & 1) << 2) | (1 << 3);
            out |= lut_read(ipool, bpool, words, wb, lut,
                            base + ipool[offsets + s], addr) << s;
        }}
        return out;
    }}
    return netlist_eval(ipool, words, wb, ipool[voter + 1], base, x, y, z,
                        scratch, inbase);
}}

static int64_t stored_pass(const int64_t *ipool, const uint8_t *bpool,
                           const uint64_t *words, int64_t wb, int64_t core,
                           int64_t base, int64_t reg_off, int64_t op,
                           int64_t internal, int64_t a, int64_t b,
                           uint8_t *scratch, int64_t inbase) {{
    int64_t bundle = core_eval(ipool, bpool, words, wb, core, base, op,
                               internal, a, b, scratch, inbase);
    int64_t reg = 0;
    for (int64_t j = 0; j < 9; j++)
        reg |= bit_at(words, wb, reg_off + j) << j;
    return bundle ^ reg;
}}

void repro_eval_batch(const int64_t *header, const int64_t *ipool,
                      const uint8_t *bpool, const int64_t *ops,
                      const int64_t *va, const int64_t *vb,
                      const uint64_t *words, int64_t n, int64_t n_words,
                      int64_t *out, uint8_t *scratch) {{
    int64_t comp = header[{H_COMP}];
    int64_t core = header[{H_CORE}];
    int64_t voter = header[{H_VOTER}];
    int64_t imap = header[{H_IMAP}];
    int64_t inbase = header[{H_SCRATCH}] - {INPUT_SCRATCH};
    for (int64_t i = 0; i < n; i++) {{
        int64_t wb = i * n_words;
        int64_t op = ops[i];
        int64_t a = va[i];
        int64_t b = vb[i];
        int64_t internal = ipool[imap + op];
        int64_t bundle;
        if (comp == {COMP_SPACE}) {{
            int64_t b0 = core_eval(ipool, bpool, words, wb, core,
                                   header[{H_BASE0}], op, internal, a, b,
                                   scratch, inbase);
            int64_t b1 = core_eval(ipool, bpool, words, wb, core,
                                   header[{H_BASE0} + 1], op, internal, a, b,
                                   scratch, inbase);
            int64_t b2 = core_eval(ipool, bpool, words, wb, core,
                                   header[{H_BASE0} + 2], op, internal, a, b,
                                   scratch, inbase);
            bundle = voter_eval(ipool, bpool, words, wb, voter,
                                header[{H_VOTER_BASE}], b0, b1, b2,
                                scratch, inbase);
        }} else if (comp == {COMP_TIME}) {{
            int64_t s0 = stored_pass(ipool, bpool, words, wb, core,
                                     header[{H_BASE0}], header[{H_STORE0}],
                                     op, internal, a, b, scratch, inbase);
            int64_t s1 = stored_pass(ipool, bpool, words, wb, core,
                                     header[{H_BASE0} + 1],
                                     header[{H_STORE0} + 1],
                                     op, internal, a, b, scratch, inbase);
            int64_t s2 = stored_pass(ipool, bpool, words, wb, core,
                                     header[{H_BASE0} + 2],
                                     header[{H_STORE0} + 2],
                                     op, internal, a, b, scratch, inbase);
            bundle = voter_eval(ipool, bpool, words, wb, voter,
                                header[{H_VOTER_BASE}], s0, s1, s2,
                                scratch, inbase);
        }} else {{
            bundle = core_eval(ipool, bpool, words, wb, core,
                               header[{H_BASE0}], op, internal, a, b,
                               scratch, inbase);
        }}
        out[i] = bundle;
    }}
}}
"""

#: Bump when the plan encoding or the C ABI changes: part of the build
#: cache key, so stale shared objects are never reloaded.
ABI_VERSION = 1


def c_source() -> str:
    """The full kernel C source, layout constants baked in."""
    return _TEMPLATE.format(
        abi_version=ABI_VERSION,
        LUT_IDENTITY=_p.LUT_IDENTITY,
        LUT_REPETITION=_p.LUT_REPETITION,
        LUT_HAMMING_FP=_p.LUT_HAMMING_FP,
        SRC_GATE=_p.SRC_GATE,
        SRC_INPUT=_p.SRC_INPUT,
        GATE_NOT=_p.GATE_NOT,
        GATE_BUF=_p.GATE_BUF,
        GATE_AND=_p.GATE_AND,
        GATE_OR=_p.GATE_OR,
        GATE_NAND=_p.GATE_NAND,
        GATE_NOR=_p.GATE_NOR,
        NODE_LUT=_p.NODE_LUT,
        COMP_SPACE=_p.COMP_SPACE,
        COMP_TIME=_p.COMP_TIME,
        H_COMP=_p.H_COMP,
        H_CORE=_p.H_CORE,
        H_VOTER=_p.H_VOTER,
        H_IMAP=_p.H_IMAP,
        H_SCRATCH=_p.H_SCRATCH,
        H_BASE0=_p.H_BASE0,
        H_VOTER_BASE=_p.H_VOTER_BASE,
        H_STORE0=_p.H_STORE0,
        INPUT_SCRATCH=_p.INPUT_SCRATCH,
    )
