"""Lowering of batched ALU object graphs to a flat kernel plan.

The compiled tier evaluates a unit through one tight loop over packed
``uint64`` fault words -- no NumPy fancy indexing, no per-node Python.
To make that loop generic over all twelve Table 2 variants, the unit is
*lowered* once into three flat arrays:

* ``header`` -- ``int64[16]``: composition kind, descriptor offsets,
  absolute site-base offsets of every redundancy segment;
* ``ipool`` -- ``int64[]``: descriptors (LUT schemes, netlist gate
  plans, offset tables) referenced by index from the header;
* ``bpool`` -- ``uint8[]``: byte tables (truth tables, Hamming
  false-positive tables).

The same plan drives both the pure-Python reference interpreter
(:mod:`repro.kernels.interp`, also the Numba JIT target) and the
generated C kernel (:mod:`repro.kernels.csrc`) -- one data format, two
executors, bit-identical by construction.

Lowering starts from :func:`repro.alu.batched.build_batched_unit`'s
object graph rather than the scalar unit: the batched classes already
hold the validated segment geometry (LUT offsets, netlist gate plans,
redundancy spans), so the compiled tier is structurally identical to
the batched tier and automatically restricted to the same unit family.
Units without a batched form lower to ``None`` and the campaign falls
back, exactly like the batched path does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Composition kinds (header[0]).
COMP_SIMPLEX = 0
COMP_SPACE = 1
COMP_TIME = 2

#: Coded-LUT schemes (lut descriptor field 0).
LUT_IDENTITY = 0
LUT_REPETITION = 1
LUT_HAMMING = 2
LUT_HAMMING_FP = 3

#: Core / voter descriptor kinds (descriptor field 0).
NODE_LUT = 0
NODE_NETLIST = 1

#: Gate type codes shared by interpreter and C source.
GATE_NOT = 0
GATE_BUF = 1
GATE_AND = 2
GATE_OR = 3
GATE_XOR = 4
GATE_NAND = 5
GATE_NOR = 6

#: Signal source kinds (match repro.logic.batched's plan encoding).
SRC_GATE = 0
SRC_INPUT = 1
SRC_CONST = 2

#: Scratch bytes reserved for netlist primary-input values, beyond the
#: per-gate node values.  Largest real netlist input set is the CMOS
#: voter's 27 (x0..8, y0..8, z0..8).
INPUT_SCRATCH = 64

#: Header slot assignments (int64[16]).
H_COMP = 0
H_CORE = 1
H_VOTER = 2
H_BASE0 = 3  # .. H_BASE2 = 5: copy/pass segment offsets
H_VOTER_BASE = 6
H_STORE0 = 7  # .. H_STORE2 = 9: holding-register offsets (time only)
H_SITES = 10
H_IMAP = 11
H_SCRATCH = 12

HEADER_LEN = 16


@dataclass(frozen=True)
class KernelPlan:
    """One unit, flattened for the compiled evaluators."""

    header: np.ndarray  # int64[16]
    ipool: np.ndarray  # int64[]
    bpool: np.ndarray  # uint8[]
    site_count: int
    scratch_size: int


class _Unloweable(Exception):
    """Internal signal: no compiled form; fall back to the batched tier."""


class _Builder:
    def __init__(self) -> None:
        self.ipool: List[int] = []
        self.bpool: List[int] = []
        self.max_nodes = 0

    def iadd(self, values: Sequence[int]) -> int:
        offset = len(self.ipool)
        self.ipool.extend(int(v) for v in values)
        return offset

    def badd(self, values: Sequence[int]) -> int:
        offset = len(self.bpool)
        self.bpool.extend(int(v) & 0xFF for v in values)
        return offset


_GATE_CODES: Dict[str, int] = {
    "NOT": GATE_NOT,
    "BUF": GATE_BUF,
    "AND": GATE_AND,
    "OR": GATE_OR,
    "XOR": GATE_XOR,
    "NAND": GATE_NAND,
    "NOR": GATE_NOR,
}

_INPUT_NAME = re.compile(r"^([a-z]+?)(\d*)$")


def _lower_lut(b: _Builder, kernel) -> int:
    """Lower one BatchedLUT to a 9-slot descriptor; returns its offset."""
    from repro.lut.batched import (
        _HammingOutputBatchedLUT,
        _IdentityBatchedLUT,
        _RepetitionBatchedLUT,
    )

    truth = np.asarray(kernel._truth_out, dtype=np.uint8)
    truth_off = b.badd(truth.tolist())
    desc = [0, int(kernel.total_bits), truth_off, int(truth.size), 0, 0, 0, 0, 0]
    if isinstance(kernel, _IdentityBatchedLUT):
        desc[0] = LUT_IDENTITY
    elif isinstance(kernel, _RepetitionBatchedLUT):
        positions = np.asarray(kernel._positions, dtype=np.int64)
        desc[0] = LUT_REPETITION
        desc[4] = int(kernel._copies)
        desc[5] = b.iadd(positions.reshape(-1).tolist())
    elif isinstance(kernel, _HammingOutputBatchedLUT):
        desc[0] = LUT_HAMMING_FP if kernel._fp_mode else LUT_HAMMING
        desc[4] = int(kernel._block_size)
        desc[5] = int(kernel._code_bits)
        desc[6] = b.iadd(np.asarray(kernel._stored_offsets).tolist())
        desc[7] = b.iadd(np.asarray(kernel._data_positions).tolist())
        desc[8] = b.badd(
            np.asarray(kernel._false_positive, dtype=np.uint8).tolist()
        )
    else:  # pragma: no cover - new BatchedLUT subclasses fall back
        raise _Unloweable
    return b.iadd(desc)


def _lower_netlist(
    b: _Builder,
    netlist,
    var_map: Dict[str, int],
    out_names: Sequence[str],
) -> int:
    """Lower one BatchedNetlist to a 7-slot descriptor; returns its offset."""
    gates: List[int] = []
    for gate_type, sources in netlist._plan:
        code = _GATE_CODES.get(gate_type.name)
        if code is None:  # pragma: no cover - exhaustive GateType today
            raise _Unloweable
        gates.append(code)
        gates.append(len(sources))
        for kind, index in sources:
            gates.append(kind)
            gates.append(index)
    gates_off = b.iadd(gates)

    invar: List[int] = []
    for name in netlist._input_names:
        match = _INPUT_NAME.match(name)
        if match is None or match.group(1) not in var_map:
            raise _Unloweable
        invar.append(var_map[match.group(1)])
        invar.append(int(match.group(2) or 0))
    n_inputs = len(netlist._input_names)
    if n_inputs > INPUT_SCRATCH:  # pragma: no cover - 27 max in practice
        raise _Unloweable
    invar_off = b.iadd(invar)

    by_name = dict(netlist._outputs)
    outs: List[int] = []
    for name in out_names:
        source = by_name.get(name)
        if source is None:
            raise _Unloweable
        outs.append(source[0])
        outs.append(source[1])
    out_off = b.iadd(outs)

    node_count = int(netlist.node_count)
    b.max_nodes = max(b.max_nodes, node_count)
    return b.iadd(
        [node_count, len(netlist._plan), gates_off, n_inputs, invar_off,
         out_off, len(out_names)]
    )


def _lower_core(b: _Builder, core) -> int:
    """Lower a batched core to a 6-slot descriptor; returns its offset."""
    from repro.alu.batched import _BatchedCMOS, _BatchedNanoBox

    if isinstance(core, _BatchedNanoBox):
        result_desc = _lower_lut(b, core._result_kernel)
        carry_desc = _lower_lut(b, core._carry_kernel)
        r_off = b.iadd(core._result_offsets)
        c_off = b.iadd(core._carry_offsets)
        return b.iadd(
            [NODE_LUT, result_desc, carry_desc, r_off, c_off, core._width]
        )
    if isinstance(core, _BatchedCMOS):
        out_names = [f"out{i}" for i in range(core._width)] + ["carry"]
        net_desc = _lower_netlist(
            b, core._netlist, {"a": 0, "b": 1, "op": 2}, out_names
        )
        return b.iadd([NODE_NETLIST, net_desc, 0, 0, 0, core._width])
    raise _Unloweable


def _lower_voter(b: _Builder, voter) -> int:
    """Lower a batched voter to a 4-slot descriptor; returns its offset."""
    from repro.alu.batched import _BatchedCMOSVoter, _BatchedLUTVoter

    if isinstance(voter, _BatchedLUTVoter):
        lut_desc = _lower_lut(b, voter._kernel)
        offsets_off = b.iadd(voter._offsets)
        return b.iadd([NODE_LUT, lut_desc, offsets_off, voter._width])
    if isinstance(voter, _BatchedCMOSVoter):
        out_names = [f"v{i}" for i in range(voter._width)]
        net_desc = _lower_netlist(
            b, voter._netlist, {"x": 0, "y": 1, "z": 2}, out_names
        )
        return b.iadd([NODE_NETLIST, net_desc, 0, voter._width])
    raise _Unloweable


def build_plan(unit) -> Optional[KernelPlan]:
    """Lower a campaign compute unit, or return ``None`` to fall back.

    Accepts exactly the units :func:`repro.alu.batched.build_batched_unit`
    accepts (all twelve Table 2 variants plus the ablation studies'
    LUT/netlist units); everything else -- gate-level Hamming decoders,
    generic block codes, defect wrappers -- returns ``None`` so callers
    degrade to the batched/scalar tiers.
    """
    from repro.alu.batched import (
        _INTERNAL_LUT,
        _BatchedSimplex,
        _BatchedSpaceRedundant,
        _BatchedTimeRedundant,
        build_batched_unit,
    )

    engine = build_batched_unit(unit)
    if engine is None:
        return None
    root = engine._root

    b = _Builder()
    header = [0] * HEADER_LEN
    header[H_VOTER] = -1
    try:
        if isinstance(root, _BatchedSimplex):
            header[H_COMP] = COMP_SIMPLEX
            header[H_CORE] = _lower_core(b, root._core)
            header[H_BASE0] = root._offset
        elif isinstance(root, _BatchedSpaceRedundant):
            header[H_COMP] = COMP_SPACE
            header[H_CORE] = _lower_core(b, root._core)
            header[H_VOTER] = _lower_voter(b, root._voter)
            for i, (offset, _size) in enumerate(root._copy_spans):
                header[H_BASE0 + i] = offset
            header[H_VOTER_BASE] = root._voter_span[0]
        elif isinstance(root, _BatchedTimeRedundant):
            header[H_COMP] = COMP_TIME
            header[H_CORE] = _lower_core(b, root._core)
            header[H_VOTER] = _lower_voter(b, root._voter)
            for i, (offset, _size) in enumerate(root._pass_spans):
                header[H_BASE0 + i] = offset
            header[H_VOTER_BASE] = root._voter_span[0]
            for i, offset in enumerate(root._storage_offsets):
                header[H_STORE0 + i] = offset
        else:
            # A bare core (no redundancy wrapper) evaluates as a
            # zero-offset simplex.
            header[H_COMP] = COMP_SIMPLEX
            header[H_CORE] = _lower_core(b, root)
            header[H_BASE0] = 0
    except _Unloweable:
        return None

    header[H_SITES] = engine.site_count
    header[H_IMAP] = b.iadd(np.asarray(_INTERNAL_LUT, dtype=np.int64).tolist())
    scratch = b.max_nodes + INPUT_SCRATCH
    header[H_SCRATCH] = scratch
    return KernelPlan(
        header=np.array(header, dtype=np.int64),
        ipool=np.array(b.ipool or [0], dtype=np.int64),
        bpool=np.array(b.bpool or [0], dtype=np.uint8),
        site_count=engine.site_count,
        scratch_size=scratch,
    )
