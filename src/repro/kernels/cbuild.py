"""Compile-and-cache machinery for the generated C kernel.

The kernel source (:func:`repro.kernels.csrc.c_source`) is compiled once
per (source hash, compiler) into a shared object under a per-user cache
directory, then loaded through ``ctypes``.  Subsequent runs -- and every
worker process of a campaign fan-out -- dlopen the cached artifact
directly, so JIT cost is paid once per machine, not once per process.

The cache directory defaults to a per-user path under the system temp
directory and can be pinned with ``REPRO_KERNEL_CACHE`` (useful in CI to
persist the artifact across steps).  Writes follow the repo-wide
crash-consistency idiom: build to a unique temp name, ``os.replace``
into place, so concurrent builders race benignly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Optional

import numpy as np

#: Environment override for the shared-object cache directory.
CACHE_ENV = "REPRO_KERNEL_CACHE"

#: Compilers probed in order; the first one on PATH wins.
COMPILERS = ("cc", "gcc", "clang")


class KernelBuildError(RuntimeError):
    """The C kernel could not be compiled or loaded on this machine."""


def cache_dir() -> Path:
    """The shared-object cache directory (created on demand)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        path = Path(override)
    else:
        uid = os.getuid() if hasattr(os, "getuid") else "shared"
        path = Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"
    path.mkdir(parents=True, exist_ok=True)
    return path


def find_compiler() -> Optional[str]:
    """Absolute path of the first available C compiler, or ``None``."""
    for name in COMPILERS:
        found = shutil.which(name)
        if found:
            return found
    return None


def _cache_tag(source: str, compiler: str) -> str:
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(compiler.encode("utf-8"))
    digest.update(sys.platform.encode("utf-8"))
    return digest.hexdigest()[:16]


def build_library(source: str) -> Path:
    """Compile ``source`` into the cache; returns the shared-object path.

    Idempotent and concurrency-safe: a cached artifact is reused without
    invoking the compiler at all.
    """
    compiler = find_compiler()
    if compiler is None:
        raise KernelBuildError(
            f"no C compiler on PATH (tried {', '.join(COMPILERS)})"
        )
    directory = cache_dir()
    lib_path = directory / f"repro_kernel_{_cache_tag(source, compiler)}.so"
    if lib_path.exists():
        return lib_path
    src_path = directory / f"{lib_path.stem}.c"
    tmp_path = directory / f".{lib_path.name}.{os.getpid()}.tmp"
    src_path.write_text(source, encoding="utf-8")
    cmd = [
        compiler, "-O2", "-shared", "-fPIC",
        "-o", str(tmp_path), str(src_path),
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise KernelBuildError(f"compiler invocation failed: {exc!r}") from exc
    if proc.returncode != 0:
        raise KernelBuildError(
            f"{compiler} failed ({proc.returncode}):\n{proc.stderr.strip()}"
        )
    os.replace(tmp_path, lib_path)
    return lib_path


_I64P = ctypes.POINTER(ctypes.c_int64)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_U8P = ctypes.POINTER(ctypes.c_uint8)


def load_eval(lib_path: Path) -> Callable:
    """dlopen the kernel and wrap its entry point in the eval signature.

    The returned callable matches :func:`repro.kernels.interp.make_eval`'s
    product: ``fn(header, ipool, bpool, ops, va, vb, words, n, n_words,
    out, scratch)`` over contiguous NumPy arrays.
    """
    try:
        lib = ctypes.CDLL(str(lib_path))
        fn = lib.repro_eval_batch
    except (OSError, AttributeError) as exc:
        raise KernelBuildError(f"could not load {lib_path}: {exc!r}") from exc
    fn.restype = None
    fn.argtypes = [
        _I64P, _I64P, _U8P, _I64P, _I64P, _I64P, _U64P,
        ctypes.c_int64, ctypes.c_int64, _I64P, _U8P,
    ]

    def eval_batch(header, ipool, bpool, ops, va, vb, words, n, n_words,
                   out, scratch):
        fn(
            header.ctypes.data_as(_I64P),
            ipool.ctypes.data_as(_I64P),
            bpool.ctypes.data_as(_U8P),
            ops.ctypes.data_as(_I64P),
            va.ctypes.data_as(_I64P),
            vb.ctypes.data_as(_I64P),
            words.ctypes.data_as(_U64P),
            int(n),
            int(n_words),
            out.ctypes.data_as(_I64P),
            scratch.ctypes.data_as(_U8P),
        )

    return eval_batch


def self_test(eval_fn) -> None:
    """Smoke-check an eval callable on a tiny known-answer plan.

    Guards against a miscompiled or ABI-skewed shared object being
    silently adopted: a bad artifact raises :class:`KernelBuildError`
    here and the provider chain falls through.
    """
    from repro.alu.nanobox import NanoBoxALU
    from repro.kernels.plan import build_plan

    unit = NanoBoxALU(scheme="none")
    plan = build_plan(unit)
    if plan is None:  # pragma: no cover - 'none' scheme always lowers
        raise KernelBuildError("self-test plan failed to lower")
    n_words = (plan.site_count + 63) // 64
    ops = np.array([0b111], dtype=np.int64)
    va = np.array([0x2B], dtype=np.int64)
    vb = np.array([0x2A], dtype=np.int64)
    words = np.zeros(n_words, dtype=np.uint64)
    out = np.zeros(1, dtype=np.int64)
    scratch = np.zeros(plan.scratch_size, dtype=np.uint8)
    eval_fn(
        plan.header, plan.ipool, plan.bpool, ops, va, vb, words,
        1, n_words, out, scratch,
    )
    expected = unit.compute(0b111, 0x2B, 0x2A).bundle
    if int(out[0]) != expected:
        raise KernelBuildError(
            f"kernel self-test mismatch: got {int(out[0])}, "
            f"expected {expected}"
        )
