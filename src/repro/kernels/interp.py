"""Reference interpreter for lowered kernel plans.

One function family evaluates any :class:`~repro.kernels.plan.KernelPlan`
over a batch of packed ``uint64`` fault words.  The code is deliberately
restricted to Numba's nopython subset -- integer scalars, flat ``ndarray``
indexing, plain loops -- so the very same source serves three roles:

* the always-available pure-Python executor (slow, but the semantic
  reference the equivalence tests pin the other executors against);
* the Numba JIT target (:func:`make_eval` called with ``numba.njit``);
* the specification the generated C kernel (:mod:`repro.kernels.csrc`)
  transliterates line for line.

Sites are addressed directly in the packed representation: site ``i`` of
batch row ``r`` is bit ``i % 64`` of word ``words[r * n_words + i // 64]``.
This is the zero-copy contract -- the mask words drawn by
``MaskPolicy.generate_batch`` are evaluated as-is, with no
``unpack_flags`` expansion to one byte per site.
"""

from __future__ import annotations

from repro.kernels.plan import (
    COMP_SPACE,
    COMP_TIME,
    GATE_AND,
    GATE_BUF,
    GATE_NAND,
    GATE_NOR,
    GATE_NOT,
    GATE_OR,
    H_BASE0,
    H_COMP,
    H_CORE,
    H_IMAP,
    H_SCRATCH,
    H_STORE0,
    H_VOTER,
    H_VOTER_BASE,
    LUT_HAMMING_FP,
    LUT_IDENTITY,
    LUT_REPETITION,
    NODE_LUT,
    SRC_GATE,
    SRC_INPUT,
)


def make_eval(jit=None):
    """Build the plan evaluator, optionally compiling every helper.

    ``jit`` is a decorator (``numba.njit`` in the compiled tier, identity
    when absent).  The helpers capture each other as closure cells, which
    Numba resolves to direct calls between jitted dispatchers.
    """
    deco = jit if jit is not None else (lambda f: f)

    @deco
    def bit_at(words, wb, site):
        # int() first: mixing a uint64 element with Python-int shifts is
        # a NumPy casting error.  Under Numba the cast wraps to int64,
        # but an arithmetic right shift keeps every bit below the shift
        # distance intact, and only bit 0 of the result survives.
        return (int(words[wb + (site >> 6)]) >> int(site & 63)) & 1

    @deco
    def lut_read(ipool, bpool, words, wb, lut, base, addr):
        scheme = ipool[lut]
        flip = 0
        if scheme == LUT_IDENTITY:
            flip = bit_at(words, wb, base + addr)
        elif scheme == LUT_REPETITION:
            copies = ipool[lut + 4]
            pos = ipool[lut + 5] + addr * copies
            ones = 0
            for c in range(copies):
                ones += bit_at(words, wb, base + ipool[pos + c])
            if ones > copies // 2:
                flip = 1
        else:
            block_size = ipool[lut + 4]
            code_bits = ipool[lut + 5]
            block = addr // block_size
            payload = addr - block * block_size
            offset = ipool[ipool[lut + 6] + block]
            syndrome = 0
            for j in range(code_bits):
                if bit_at(words, wb, base + offset + j) != 0:
                    syndrome ^= j + 1
            data_col = ipool[ipool[lut + 7] + payload]
            raw = bit_at(words, wb, base + offset + data_col)
            corrector = 0
            if syndrome != 0:
                if scheme == LUT_HAMMING_FP:
                    corrector = 1
                elif bpool[ipool[lut + 8] + syndrome] != 0:
                    corrector = 1
                elif syndrome - 1 == data_col:
                    corrector = 1
            flip = raw ^ corrector
        return int(bpool[ipool[lut + 2] + addr]) ^ flip

    @deco
    def netlist_eval(ipool, words, wb, net, base, v0, v1, v2, scratch, inbase):
        n_gates = ipool[net + 1]
        p = ipool[net + 2]
        n_inputs = ipool[net + 3]
        invar = ipool[net + 4]
        for k in range(n_inputs):
            var = ipool[invar + 2 * k]
            bit_index = ipool[invar + 2 * k + 1]
            if var == 0:
                source = v0
            elif var == 1:
                source = v1
            else:
                source = v2
            scratch[inbase + k] = (source >> bit_index) & 1
        for g in range(n_gates):
            gate = ipool[p]
            n_src = ipool[p + 1]
            p += 2
            kind = ipool[p]
            index = ipool[p + 1]
            p += 2
            if kind == SRC_GATE:
                value = int(scratch[index])
            elif kind == SRC_INPUT:
                value = int(scratch[inbase + index])
            else:
                value = 1 if index != 0 else 0
            if gate == GATE_NOT:
                value ^= 1
                p += 2 * (n_src - 1)
            elif gate == GATE_BUF:
                p += 2 * (n_src - 1)
            else:
                for _s in range(n_src - 1):
                    kind = ipool[p]
                    index = ipool[p + 1]
                    p += 2
                    if kind == SRC_GATE:
                        other = int(scratch[index])
                    elif kind == SRC_INPUT:
                        other = int(scratch[inbase + index])
                    else:
                        other = 1 if index != 0 else 0
                    if gate == GATE_AND or gate == GATE_NAND:
                        value &= other
                    elif gate == GATE_OR or gate == GATE_NOR:
                        value |= other
                    else:
                        value ^= other
                if gate == GATE_NAND or gate == GATE_NOR:
                    value ^= 1
            scratch[g] = value ^ bit_at(words, wb, base + g)
        out_off = ipool[net + 5]
        n_out = ipool[net + 6]
        bundle = 0
        for o in range(n_out):
            kind = ipool[out_off + 2 * o]
            index = ipool[out_off + 2 * o + 1]
            if kind == SRC_GATE:
                value = int(scratch[index])
            elif kind == SRC_INPUT:
                value = int(scratch[inbase + index])
            else:
                value = 1 if index != 0 else 0
            bundle |= value << o
        return bundle

    @deco
    def core_eval(
        ipool, bpool, words, wb, core, base, op, internal, a, b,
        scratch, inbase,
    ):
        if ipool[core] == NODE_LUT:
            result_lut = ipool[core + 1]
            carry_lut = ipool[core + 2]
            r_off = ipool[core + 3]
            c_off = ipool[core + 4]
            width = ipool[core + 5]
            op_addr = internal << 3
            carry = 0
            value = 0
            for s in range(width):
                addr = (
                    ((a >> s) & 1) | (((b >> s) & 1) << 1)
                    | (carry << 2) | op_addr
                )
                bit = lut_read(
                    ipool, bpool, words, wb, result_lut,
                    base + ipool[r_off + s], addr,
                )
                carry = lut_read(
                    ipool, bpool, words, wb, carry_lut,
                    base + ipool[c_off + s], addr,
                )
                value |= bit << s
            return value | (carry << 8)
        return netlist_eval(
            ipool, words, wb, ipool[core + 1], base, a, b, op,
            scratch, inbase,
        )

    @deco
    def voter_eval(ipool, bpool, words, wb, voter, base, x, y, z,
                   scratch, inbase):
        if ipool[voter] == NODE_LUT:
            lut = ipool[voter + 1]
            offsets = ipool[voter + 2]
            width = ipool[voter + 3]
            out = 0
            for s in range(width):
                addr = (
                    ((x >> s) & 1) | (((y >> s) & 1) << 1)
                    | (((z >> s) & 1) << 2) | (1 << 3)
                )
                out |= lut_read(
                    ipool, bpool, words, wb, lut,
                    base + ipool[offsets + s], addr,
                ) << s
            return out
        return netlist_eval(
            ipool, words, wb, ipool[voter + 1], base, x, y, z,
            scratch, inbase,
        )

    @deco
    def stored_pass(
        ipool, bpool, words, wb, core, base, reg_off, op, internal, a, b,
        scratch, inbase,
    ):
        bundle = core_eval(
            ipool, bpool, words, wb, core, base, op, internal, a, b,
            scratch, inbase,
        )
        register = 0
        for j in range(9):
            register |= bit_at(words, wb, reg_off + j) << j
        return bundle ^ register

    @deco
    def eval_batch(header, ipool, bpool, ops, va, vb, words, n, n_words,
                   out, scratch):
        comp = header[H_COMP]
        core = header[H_CORE]
        voter = header[H_VOTER]
        imap = header[H_IMAP]
        inbase = header[H_SCRATCH] - 64
        for i in range(n):
            wb = i * n_words
            op = ops[i]
            a = va[i]
            b = vb[i]
            internal = ipool[imap + op]
            if comp == COMP_SPACE:
                b0 = core_eval(
                    ipool, bpool, words, wb, core, header[H_BASE0],
                    op, internal, a, b, scratch, inbase,
                )
                b1 = core_eval(
                    ipool, bpool, words, wb, core, header[H_BASE0 + 1],
                    op, internal, a, b, scratch, inbase,
                )
                b2 = core_eval(
                    ipool, bpool, words, wb, core, header[H_BASE0 + 2],
                    op, internal, a, b, scratch, inbase,
                )
                bundle = voter_eval(
                    ipool, bpool, words, wb, voter, header[H_VOTER_BASE],
                    b0, b1, b2, scratch, inbase,
                )
            elif comp == COMP_TIME:
                s0 = stored_pass(
                    ipool, bpool, words, wb, core, header[H_BASE0],
                    header[H_STORE0], op, internal, a, b, scratch, inbase,
                )
                s1 = stored_pass(
                    ipool, bpool, words, wb, core, header[H_BASE0 + 1],
                    header[H_STORE0 + 1], op, internal, a, b,
                    scratch, inbase,
                )
                s2 = stored_pass(
                    ipool, bpool, words, wb, core, header[H_BASE0 + 2],
                    header[H_STORE0 + 2], op, internal, a, b,
                    scratch, inbase,
                )
                bundle = voter_eval(
                    ipool, bpool, words, wb, voter, header[H_VOTER_BASE],
                    s0, s1, s2, scratch, inbase,
                )
            else:
                bundle = core_eval(
                    ipool, bpool, words, wb, core, header[H_BASE0],
                    op, internal, a, b, scratch, inbase,
                )
            out[i] = bundle

    return eval_batch


#: The always-available pure-Python executor (the semantic reference).
eval_batch_python = make_eval(None)
