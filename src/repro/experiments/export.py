"""Machine-readable export of experiment results.

Figure sweeps, yield studies, and campaign summaries serialise to JSON
(for archival / cross-run comparison) and CSV (for external plotting).
The JSON documents carry enough metadata -- variant names, fault
percentages, seeds are the caller's responsibility -- to regenerate the
exact run.
"""

from __future__ import annotations

import csv
import io
import json
import platform
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Sequence

from repro.experiments.figures import FigureResult, SeriesPoint


def run_manifest(**parameters: Any) -> Dict[str, Any]:
    """Provenance record to attach to exported results.

    Captures the library version and interpreter/platform alongside the
    caller's experiment parameters (seeds, trial counts, ...), so an
    archived JSON export documents how to regenerate itself.
    """
    import repro

    return {
        "library": "repro",
        "version": repro.__version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "parameters": dict(parameters),
    }


def figure_to_dict(
    result: FigureResult, manifest: Dict[str, Any] = None
) -> Dict[str, Any]:
    """Convert a figure sweep to a JSON-serialisable dictionary.

    Pass a :func:`run_manifest` to embed provenance in the export.
    """
    data = {
        "name": result.name,
        "title": result.title,
        "fault_percents": list(result.fault_percents),
        "points": [asdict(point) for point in result.points],
    }
    if manifest is not None:
        data["manifest"] = manifest
    return data


def figure_to_json(result: FigureResult, indent: int = 2) -> str:
    """Serialise a figure sweep to JSON."""
    return json.dumps(figure_to_dict(result), indent=indent, sort_keys=True)


def figure_from_json(text: str) -> FigureResult:
    """Reconstruct a figure sweep from its JSON export."""
    data = json.loads(text)
    try:
        points = tuple(SeriesPoint(**p) for p in data["points"])
        return FigureResult(
            name=data["name"],
            title=data["title"],
            fault_percents=tuple(data["fault_percents"]),
            points=points,
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"not a figure export: {exc}") from exc


def figure_to_csv(result: FigureResult) -> str:
    """Serialise a figure sweep to CSV (one row per plotted point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["figure", "variant", "fault_percent", "percent_correct",
         "stddev", "samples", "fit_rate"]
    )
    for p in result.points:
        writer.writerow(
            [result.name, p.variant, p.fault_percent, f"{p.percent_correct:.4f}",
             f"{p.stddev:.4f}", p.samples, f"{p.fit_rate:.6e}"]
        )
    return buffer.getvalue()


def records_to_json(records: Sequence[Any], indent: int = 2) -> str:
    """Serialise any sequence of result dataclasses to JSON.

    Works for :class:`~repro.experiments.defect_yield.YieldPoint`,
    :class:`~repro.experiments.scaling.DetectionPoint`, and friends.
    """
    rows: List[Dict[str, Any]] = []
    for record in records:
        if not is_dataclass(record):
            raise TypeError(f"expected a dataclass record, got {type(record)}")
        rows.append(asdict(record))
    return json.dumps(rows, indent=indent, sort_keys=True)


def records_to_csv(records: Sequence[Any]) -> str:
    """Serialise a homogeneous sequence of result dataclasses to CSV."""
    rows = []
    for record in records:
        if not is_dataclass(record):
            raise TypeError(f"expected a dataclass record, got {type(record)}")
        rows.append(asdict(record))
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
