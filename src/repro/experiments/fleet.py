"""Region-sharded soak campaigns for very large cell fleets.

A 10^5-10^6-cell fleet under realistic per-cell fault rates is almost
entirely quiescent, which is exactly what the event-driven
:class:`~repro.grid.engine.SparseGrid` core exploits -- but one python
process is still one core.  This module shards a huge fleet into
independent column-band regions, runs each region as its own sparse
simulation (its own seed, its own fault streams), and folds the results
back together:

* plain counters aggregate by integer addition (associative and
  commutative, so any grouping or ordering of regions yields the same
  totals -- property-tested);
* worker observability merges exactly like the PR campaign executor's:
  each worker records into a fresh observer and ships its metrics
  snapshot and trace records home, where the parent folds them in under
  a ``chunkN`` source prefix.

Regions are *independent* fabrics, not tiles of one fabric: no packet
crosses a region boundary, matching the paper's vision of many NanoBox
grids each hanging off its own control processor.  A sharded run is
therefore bit-identical to running the same regions sequentially in one
process, regardless of worker count or completion order.

The soak scenario ages an idle fleet under a temporal fault process
while a *rolling quarantine wave* sweeps the columns: every
``wave_period`` cycles the wave advances one column and slams every
cell in it past its error threshold, the watchdog quarantines them, and
periodic canary probe rounds re-admit them -- continuous lifecycle churn
at fleet scale, the sparse engine's worst realistic case.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.faults.temporal import TemporalFaultProcess
from repro.grid.simulator import GridSimulator
from repro.grid.watchdog import CellState, LifecyclePolicy
from repro.obs import Observer, get_observer, observing

#: Mixing stride for per-region seeds: regions of one fleet draw from
#: well-separated base seeds, and the mapping is pure so re-running any
#: region reproduces it exactly.
_REGION_SEED_STRIDE = 7919


@dataclass(frozen=True)
class FleetRegion:
    """One independent column-band shard of a fleet."""

    index: int
    rows: int
    cols: int
    seed: int

    @property
    def cells(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class RegionOutcome:
    """Counters from soaking one region (pure function of its inputs)."""

    index: int
    cells: int
    cycles: int
    fault_events: int
    quarantines: int
    readmissions: int
    retired: int
    wave_hits: int
    alive_cell_cycles: int
    total_cell_cycles: int

    @property
    def availability(self) -> float:
        """Alive-cell-cycles over total cell-cycles."""
        if not self.total_cell_cycles:
            return 1.0
        return self.alive_cell_cycles / self.total_cell_cycles


@dataclass(frozen=True)
class FleetReport:
    """Aggregate of a whole fleet soak (sum of its region outcomes)."""

    rows: int
    cols: int
    regions: int
    cells: int
    cycles: int
    fault_events: int
    quarantines: int
    readmissions: int
    retired: int
    wave_hits: int
    alive_cell_cycles: int
    total_cell_cycles: int

    @property
    def availability(self) -> float:
        if not self.total_cell_cycles:
            return 1.0
        return self.alive_cell_cycles / self.total_cell_cycles


def shard_fleet(
    rows: int, cols: int, regions: int, seed: int = 0
) -> List[FleetRegion]:
    """Split a ``rows x cols`` fleet into contiguous column-band regions.

    Column counts differ by at most one across regions; each region gets
    a well-separated deterministic seed.  ``regions`` is clamped to
    ``cols`` (a region must hold at least one column).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"fleet must be at least 1x1, got {rows}x{cols}")
    if regions < 1:
        raise ValueError(f"regions must be positive, got {regions}")
    regions = min(regions, cols)
    base, extra = divmod(cols, regions)
    return [
        FleetRegion(
            index=index,
            rows=rows,
            cols=base + (1 if index < extra else 0),
            seed=seed + _REGION_SEED_STRIDE * index,
        )
        for index in range(regions)
    ]


def run_fleet_region(
    region: FleetRegion,
    *,
    ticks: int,
    process: Optional[TemporalFaultProcess] = None,
    wave_period: int = 0,
    error_threshold: int = 4,
    heartbeat_decay: float = 1.0,
    readmit_clean_probes: int = 1,
    probe_interval: int = 64,
    grid_engine: str = "sparse",
) -> RegionOutcome:
    """Soak one region: idle fabric + fault process + quarantine wave.

    The rolling wave advances one column every ``wave_period`` cycles
    (0 disables it) and overwhelms that column's heartbeats; periodic
    canary probe rounds (every ``probe_interval`` cycles) re-admit
    quarantined cells that still compute correctly.  Deterministic in
    ``region.seed``, so a re-run -- in any process -- reproduces the
    outcome exactly.
    """
    sim = GridSimulator(
        rows=region.rows,
        cols=region.cols,
        error_threshold=error_threshold,
        heartbeat_decay=heartbeat_decay,
        lifecycle_policy=LifecyclePolicy(
            probing=True, readmit_clean_probes=readmit_clean_probes
        ),
        temporal_fault_process=process,
        seed=region.seed,
        grid_engine=grid_engine,
    )
    grid, watchdog, control = sim.grid, sim.watchdog, sim.control
    wave_hits = [0]
    alive_cell_cycles = [0]
    # Decisively past the threshold: each poll's beat decays the score
    # by ``heartbeat_decay`` before the health check, so a bare
    # threshold+1 would be rescued before the watchdog ever saw it.
    overwhelm = 3 * (error_threshold + 1)

    def wave_hook() -> None:
        cycle = grid.cycle
        if wave_period and cycle % wave_period == 0:
            column = (cycle // wave_period) % region.cols
            for row in range(region.rows):
                grid.cell(row, column).heartbeat.record_error(overwhelm)
                wave_hits[0] += 1
        alive_cell_cycles[0] += grid.alive_count()

    control.add_tick_hook(wave_hook)
    obs = get_observer()
    with obs.metrics.time("fleet.region"):
        remaining = ticks
        while remaining > 0:
            span = min(probe_interval, remaining)
            control.tick(span)
            remaining -= span
            watchdog.probe_quarantined()
    stats = sim.stats()
    obs.metrics.counter("fleet.regions").inc()
    obs.metrics.counter("fleet.fault_events").inc(stats.temporal_fault_events)
    obs.metrics.counter("fleet.quarantines").inc(stats.quarantines)
    obs.metrics.counter("fleet.readmissions").inc(stats.readmissions)
    obs.metrics.counter("fleet.wave_hits").inc(wave_hits[0])
    if obs.enabled:
        obs.trace.emit(
            "fleet_region_end",
            source=f"fleet/region{region.index}",
            cells=region.cells,
            cycles=stats.cycles,
            quarantines=stats.quarantines,
            readmissions=stats.readmissions,
        )
    return RegionOutcome(
        index=region.index,
        cells=region.cells,
        cycles=stats.cycles,
        fault_events=stats.temporal_fault_events,
        quarantines=stats.quarantines,
        readmissions=stats.readmissions,
        retired=len(
            sim.watchdog.cells_in_state(CellState.RETIRED)
        ),
        wave_hits=wave_hits[0],
        alive_cell_cycles=alive_cell_cycles[0],
        total_cell_cycles=region.cells * stats.cycles,
    )


def merge_outcomes(
    rows: int,
    cols: int,
    outcomes: List[RegionOutcome],
) -> FleetReport:
    """Fold region outcomes into one report (pure integer addition).

    Addition is associative and commutative, so the fold is invariant
    under any permutation or regrouping of ``outcomes``.
    """
    return FleetReport(
        rows=rows,
        cols=cols,
        regions=len(outcomes),
        cells=sum(o.cells for o in outcomes),
        cycles=max((o.cycles for o in outcomes), default=0),
        fault_events=sum(o.fault_events for o in outcomes),
        quarantines=sum(o.quarantines for o in outcomes),
        readmissions=sum(o.readmissions for o in outcomes),
        retired=sum(o.retired for o in outcomes),
        wave_hits=sum(o.wave_hits for o in outcomes),
        alive_cell_cycles=sum(o.alive_cell_cycles for o in outcomes),
        total_cell_cycles=sum(o.total_cell_cycles for o in outcomes),
    )


def _run_region_observed(
    payload: Tuple[FleetRegion, Dict[str, object]],
) -> Tuple[RegionOutcome, Dict[str, object], Tuple[Dict[str, object], ...]]:
    """Worker entry point: one region plus its worker observability.

    Mirrors the campaign executor's observed-chunk protocol: the worker
    records into its own fresh observer and ships the metrics snapshot
    and trace records home with the result; the parent merges them.
    """
    region, kwargs = payload
    worker_obs = Observer()
    with observing(worker_obs):
        outcome = run_fleet_region(region, **kwargs)
    return (
        outcome,
        worker_obs.metrics.snapshot(),
        worker_obs.trace.to_records(),
    )


def run_fleet_soak(
    rows: int,
    cols: int,
    *,
    ticks: int,
    regions: int = 4,
    jobs: int = 1,
    seed: int = 0,
    process: Optional[TemporalFaultProcess] = None,
    wave_period: int = 0,
    error_threshold: int = 4,
    heartbeat_decay: float = 1.0,
    readmit_clean_probes: int = 1,
    probe_interval: int = 64,
    grid_engine: str = "sparse",
) -> FleetReport:
    """Soak a sharded fleet; aggregate region outcomes into one report.

    ``jobs > 1`` fans regions out over a process pool; each worker ships
    its observability home and the parent folds it in under a ``chunkN``
    source prefix (the executor convention).  Results are identical for
    any ``jobs`` value: every region is a pure function of its shard.
    """
    shards = shard_fleet(rows, cols, regions, seed)
    kwargs: Dict[str, object] = dict(
        ticks=ticks,
        process=process,
        wave_period=wave_period,
        error_threshold=error_threshold,
        heartbeat_decay=heartbeat_decay,
        readmit_clean_probes=readmit_clean_probes,
        probe_interval=probe_interval,
        grid_engine=grid_engine,
    )
    outcomes: List[RegionOutcome]
    if jobs <= 1 or len(shards) == 1:
        outcomes = [run_fleet_region(shard, **kwargs) for shard in shards]
    else:
        obs = get_observer()
        payloads = [(shard, kwargs) for shard in shards]
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards))) as pool:
            shipped = list(pool.map(_run_region_observed, payloads))
        outcomes = []
        for index, (outcome, metrics_snapshot, trace_records) in enumerate(
            shipped
        ):
            outcomes.append(outcome)
            obs.metrics.merge_snapshot(metrics_snapshot)
            if obs.enabled and trace_records:
                obs.trace.extend(
                    trace_records, source_prefix=f"chunk{index}"
                )
    return merge_outcomes(rows, cols, outcomes)


def encode_outcome(outcome: RegionOutcome) -> Dict[str, object]:
    """Lossless JSON form of one :class:`RegionOutcome` (all ints)."""
    return asdict(outcome)


def decode_outcome(payload: Dict[str, object]) -> RegionOutcome:
    """Inverse of :func:`encode_outcome` (exact round-trip)."""
    return RegionOutcome(**payload)  # type: ignore[arg-type]
