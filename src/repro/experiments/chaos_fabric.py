"""Chaos/soak study of the fault-tolerant communication fabric.

The paper's Figures 7-9 sweep ALU-level fault density against
percent-correct; this module is the fabric analogue: it sweeps
*link-level* fault rates x retry budgets and reports the
delivered-correct fraction, the retransmit overhead in cycles and
packets, and how many cells the watchdog disabled along the way --
with and without the CRC + retransmit protection, so the protocol's
value (and its rate-0 overhead) is measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.alu.reference import reference_compute
from repro.grid.control import JobInstruction
from repro.grid.linkfault import LinkFaultConfig
from repro.grid.simulator import GridSimulator

#: Default link bit-flip rates swept (per wire bit per link traversal).
DEFAULT_LINK_RATES = (0.0, 0.001, 0.003, 0.01)

#: Default retransmit budgets swept (total submission rounds).
DEFAULT_RETRY_BUDGETS = (1, 3)


@dataclass(frozen=True)
class ChaosPoint:
    """One (link fault rate, protection, retry budget) measurement."""

    bit_flip_rate: float
    drop_rate: float
    stall_rate: float
    protected: bool  # CRC framing + retransmit protocol on
    max_rounds: int
    submitted: int
    delivered: int
    delivered_correct: int
    total_cycles: int
    rounds_used: int
    retransmissions: int
    duplicates: int
    timed_out: int
    corrupt_rejected: int
    link_dropped: int
    silent_corruptions: int
    unassigned: int
    watchdog_disables: int

    @property
    def delivered_correct_fraction(self) -> float:
        """Fraction of submitted instructions answered *correctly*."""
        if self.submitted == 0:
            return 1.0
        return self.delivered_correct / self.submitted

    @property
    def retransmit_overhead_packets(self) -> float:
        """Extra injections per submitted instruction."""
        if self.submitted == 0:
            return 0.0
        return self.retransmissions / self.submitted


#: The ISA's four opcodes (Table 1): AND, OR, XOR, ADD.
_OPCODES = (0b000, 0b001, 0b010, 0b111)


def chaos_workload(n_instructions: int) -> List[JobInstruction]:
    """A deterministic mixed-opcode workload with known expectations."""
    instructions: List[JobInstruction] = []
    for iid in range(n_instructions):
        op = _OPCODES[iid % len(_OPCODES)]
        a = (iid * 31) & 0xFF
        b = (iid * 17 + 5) & 0xFF
        instructions.append((iid, op, a, b))
    return instructions


def expected_results(instructions: Sequence[JobInstruction]):
    return {
        iid: reference_compute(op, a, b).value
        for iid, op, a, b in instructions
    }


def run_chaos_point(
    bit_flip_rate: float,
    *,
    protected: bool,
    max_rounds: int = 3,
    drop_rate: float = 0.0,
    stall_rate: float = 0.0,
    rows: int = 3,
    cols: int = 3,
    n_instructions: int = 48,
    error_threshold: int = 8,
    adaptive_routing: bool = False,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
) -> ChaosPoint:
    """Run one job through a fabric with the given link fault rates.

    ``protected=True`` turns on CRC framing (detection) and leaves the
    retransmit budget at ``max_rounds``; ``protected=False`` measures
    the bare fabric, where corrupted packets are only caught if they no
    longer frame at all.
    """
    config = LinkFaultConfig(
        bit_flip_rate=bit_flip_rate,
        drop_rate=drop_rate,
        stall_rate=stall_rate,
    )
    sim = GridSimulator(
        rows=rows,
        cols=cols,
        error_threshold=error_threshold,
        adaptive_routing=adaptive_routing,
        link_fault_config=config if config.any_faults else None,
        crc_enabled=protected,
        seed=seed,
        backend=backend,
        grid_engine=grid_engine,
    )
    instructions = chaos_workload(n_instructions)
    expected = expected_results(instructions)
    job = sim.run_instructions(instructions, max_rounds=max_rounds)
    stats = sim.stats()
    correct = sum(
        1 for iid, value in job.results.items() if expected.get(iid) == value
    )
    return ChaosPoint(
        bit_flip_rate=bit_flip_rate,
        drop_rate=drop_rate,
        stall_rate=stall_rate,
        protected=protected,
        max_rounds=max_rounds,
        submitted=job.submitted,
        delivered=len(job.results),
        delivered_correct=correct,
        total_cycles=job.cycles.total,
        rounds_used=job.rounds,
        retransmissions=job.delivery.retransmissions,
        duplicates=job.delivery.duplicates,
        timed_out=job.delivery.timed_out,
        corrupt_rejected=job.delivery.corrupt_rejected,
        link_dropped=job.delivery.link_dropped,
        silent_corruptions=stats.silent_corruptions,
        unassigned=len(job.unassigned),
        watchdog_disables=len(stats.failed_cells),
    )


def chaos_sweep(
    link_rates: Sequence[float] = DEFAULT_LINK_RATES,
    retry_budgets: Sequence[int] = DEFAULT_RETRY_BUDGETS,
    *,
    drop_rate: float = 0.0,
    stall_rate: float = 0.0,
    rows: int = 3,
    cols: int = 3,
    n_instructions: int = 48,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
) -> List[ChaosPoint]:
    """Sweep link fault rates x retry budgets, protected and bare."""
    points: List[ChaosPoint] = []
    for rate in link_rates:
        for budget in retry_budgets:
            for protected in (False, True):
                points.append(
                    run_chaos_point(
                        rate,
                        protected=protected,
                        max_rounds=budget,
                        drop_rate=drop_rate,
                        stall_rate=stall_rate,
                        rows=rows,
                        cols=cols,
                        n_instructions=n_instructions,
                        seed=seed,
                        backend=backend,
                        grid_engine=grid_engine,
                    )
                )
    return points


def encode_chaos_point(point: ChaosPoint) -> Dict[str, Any]:
    """Lossless JSON form of one :class:`ChaosPoint`.

    All fields are ints, bools, and floats; JSON round-trips every one
    exactly, which the byte-identical resume guarantee depends on.
    """
    return asdict(point)


def decode_chaos_point(payload: Dict[str, Any]) -> ChaosPoint:
    """Inverse of :func:`encode_chaos_point` (exact round-trip)."""
    return ChaosPoint(**payload)


def chaos_sweep_resilient(
    runtime,
    link_rates: Sequence[float] = DEFAULT_LINK_RATES,
    retry_budgets: Sequence[int] = DEFAULT_RETRY_BUDGETS,
    *,
    drop_rate: float = 0.0,
    stall_rate: float = 0.0,
    rows: int = 3,
    cols: int = 3,
    n_instructions: int = 48,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
):
    """:func:`chaos_sweep` under the crash-safe campaign runtime.

    ``runtime`` is a :class:`repro.perf.ResilientRuntime`.  Returns the
    :class:`~repro.perf.ResilientOutcome` whose ``results`` hold the
    sweep's :class:`ChaosPoint`\\ s in :func:`chaos_sweep` order (with
    ``None`` for cells a deadline left uncomputed); a complete outcome's
    points are identical to an uninterrupted sweep's.
    """
    from repro.perf.resilient import ResilientRunner

    tasks = [
        {"rate": rate, "budget": budget, "protected": protected}
        for rate in link_rates
        for budget in retry_budgets
        for protected in (False, True)
    ]
    config = {
        "experiment": "chaos-fabric-sweep",
        "link_rates": list(link_rates),
        "retry_budgets": list(retry_budgets),
        "drop_rate": drop_rate,
        "stall_rate": stall_rate,
        "rows": rows,
        "cols": cols,
        "n_instructions": n_instructions,
        "seed": seed,
    }

    def run_chunk(_index: int, chunk: Sequence[Dict[str, Any]]):
        return [
            run_chaos_point(
                task["rate"],
                protected=task["protected"],
                max_rounds=task["budget"],
                drop_rate=drop_rate,
                stall_rate=stall_rate,
                rows=rows,
                cols=cols,
                n_instructions=n_instructions,
                seed=seed,
                backend=backend,
                grid_engine=grid_engine,
            )
            for task in chunk
        ]

    runner = ResilientRunner(
        run_chunk,
        runtime=runtime,
        config=config,
        kind="chaos-points",
        encode=encode_chaos_point,
        decode=decode_chaos_point,
    )
    return runner.run(tasks)


def chaos_table_text(points: Sequence[ChaosPoint]) -> str:
    """Render a sweep as the EXPERIMENTS-style fixed-width table."""
    from repro.experiments.report import format_table

    rows: List[Tuple[str, ...]] = []
    for p in points:
        rows.append(
            (
                f"{p.bit_flip_rate:g}",
                "crc+retry" if p.protected else "bare",
                str(p.max_rounds),
                f"{100 * p.delivered_correct_fraction:.1f}%",
                str(p.retransmissions),
                str(p.corrupt_rejected),
                str(p.link_dropped),
                str(p.silent_corruptions),
                str(p.timed_out),
                str(p.watchdog_disables),
                str(p.total_cycles),
            )
        )
    return format_table(
        (
            "flip rate",
            "fabric",
            "rounds",
            "correct",
            "retx",
            "crc/frame rej",
            "lost",
            "silent",
            "timeout",
            "disabled",
            "cycles",
        ),
        rows,
    )
