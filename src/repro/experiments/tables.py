"""Tables 1 and 2 of the paper.

Table 1 is the processor-cell ISA; Table 2 names the twelve ALU
implementations and their potential fault-injection site counts.  Our
constructions must reproduce the counts *exactly* -- ``table2_rows``
returns both the expected and constructed values so the benchmark and the
test suite can assert the match.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.alu.base import Opcode
from repro.alu.reference import reference_compute
from repro.alu.variants import TABLE2_SITE_COUNTS, build_alu, variant_spec
from repro.experiments.report import format_table

_ACTION = {
    Opcode.AND: "Operand1 AND Operand2",
    Opcode.OR: "Operand1 OR Operand2",
    Opcode.XOR: "Operand1 XOR Operand2",
    Opcode.ADD: "Operand1 + Operand2",
}


def table1_rows() -> List[Tuple[str, str, str]]:
    """(opcode bits, mnemonic, action) rows of the ISA table."""
    return [
        (format(int(op), "03b"), op.name, _ACTION[op]) for op in Opcode
    ]


def table1_text() -> str:
    """Render Table 1 (ALU Instruction Set)."""
    return "ALU Instruction Set\n" + format_table(
        ("Opcode", "Instruction", "Action"), table1_rows()
    )


def table2_rows() -> List[Tuple[str, int, int, str]]:
    """(name, paper sites, constructed sites, description) per variant."""
    rows = []
    for name, expected in TABLE2_SITE_COUNTS.items():
        spec = variant_spec(name)
        constructed = build_alu(name).site_count
        rows.append((name, expected, constructed, spec.description))
    return rows

def table2_text() -> str:
    """Render Table 2 with the constructed counts alongside the paper's."""
    rows = [
        (name, paper, built, "OK" if paper == built else "MISMATCH")
        for name, paper, built, _desc in table2_rows()
    ]
    return "ALU naming conventions and potential fault injection sites\n" + format_table(
        ("ALU", "paper sites", "constructed sites", "status"), rows
    )


def isa_spot_checks() -> List[Tuple[str, int, int, int]]:
    """Worked ISA examples: (mnemonic, a, b, result) demonstration rows."""
    cases = [
        (Opcode.AND, 0b11001100, 0b10101010),
        (Opcode.OR, 0b11001100, 0b10101010),
        (Opcode.XOR, 0b11001100, 0b10101010),
        (Opcode.ADD, 200, 100),
    ]
    return [
        (op.name, a, b, reference_compute(int(op), a, b).value)
        for op, a, b in cases
    ]
