"""Self-healing study: lifecycle policies under temporal fault processes.

The paper's Section 2.3 watchdog permanently disables any cell whose
heartbeat goes silent -- correct for permanent defects, wasteful for the
transient and intermittent processes real nanoscale devices exhibit.
This experiment sweeps temporal fault processes
(:mod:`repro.faults.temporal`) against lifecycle policies
(:class:`repro.grid.watchdog.LifecyclePolicy`) and measures *goodput*
(correct results per kilocycle) and *availability* (mean fraction of
cells in service, integrated per cycle), demonstrating that quarantine +
canary re-admission strictly beats permanent disable under intermittent
faults while matching it under permanent defects.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.alu.reference import reference_compute
from repro.faults.temporal import TemporalFaultProcess
from repro.grid.control import JobInstruction
from repro.grid.simulator import GridSimulator
from repro.grid.watchdog import LifecyclePolicy
from repro.obs import get_observer

#: The ISA's four opcodes (Table 1): AND, OR, XOR, ADD.
_OPCODES = (0b000, 0b001, 0b010, 0b111)


@dataclass(frozen=True)
class PolicyConfig:
    """A named lifecycle configuration: watchdog policy + heartbeat decay."""

    name: str
    heartbeat_decay: float
    policy: LifecyclePolicy


def permanent_policy() -> PolicyConfig:
    """The paper's baseline: monotone error tally, disable forever."""
    return PolicyConfig(
        name="permanent",
        heartbeat_decay=0.0,
        policy=LifecyclePolicy(),
    )


def self_healing_policy(
    heartbeat_decay: float = 0.1,
    suspect_polls: int = 2,
    readmit_clean_probes: int = 2,
    retire_failed_rounds: int = 3,
) -> PolicyConfig:
    """The full lifecycle: leaky bucket, quarantine, probe, re-admit."""
    return PolicyConfig(
        name="self-healing",
        heartbeat_decay=heartbeat_decay,
        policy=LifecyclePolicy(
            suspect_polls=suspect_polls,
            probing=True,
            readmit_clean_probes=readmit_clean_probes,
            retire_failed_rounds=retire_failed_rounds,
        ),
    )


def default_processes() -> Tuple[TemporalFaultProcess, ...]:
    """The sweep's default taxonomy: one process per temporal class."""
    return (
        TemporalFaultProcess.transient(rate=0.002, errors_per_cycle=2),
        TemporalFaultProcess.intermittent(
            rate=0.0015, burst_length=5, errors_per_cycle=3
        ),
        TemporalFaultProcess.stuck_at(rate=0.0002),
    )


@dataclass(frozen=True)
class LifecyclePoint:
    """One (fault process, lifecycle policy) measurement."""

    process: str
    policy: str
    jobs: int
    submitted: int
    delivered_correct: int
    total_cycles: int
    availability: float
    fault_events: int
    quarantines: int
    readmissions: int
    retired: int
    shed: int
    unanswered: int

    @property
    def goodput(self) -> float:
        """Correct results delivered per kilocycle."""
        if self.total_cycles == 0:
            return 0.0
        return 1000.0 * self.delivered_correct / self.total_cycles

    @property
    def correct_fraction(self) -> float:
        """Fraction of submitted instructions answered correctly."""
        if self.submitted == 0:
            return 1.0
        return self.delivered_correct / self.submitted


def lifecycle_workload(
    n_instructions: int, start_iid: int = 0
) -> List[JobInstruction]:
    """A deterministic mixed-opcode workload with known expectations."""
    instructions: List[JobInstruction] = []
    for offset in range(n_instructions):
        iid = start_iid + offset
        op = _OPCODES[iid % len(_OPCODES)]
        a = (iid * 31) & 0xFF
        b = (iid * 17 + 5) & 0xFF
        instructions.append((iid, op, a, b))
    return instructions


def run_lifecycle_point(
    process: TemporalFaultProcess,
    config: PolicyConfig,
    *,
    jobs: int = 6,
    n_instructions: int = 96,
    rows: int = 4,
    cols: int = 4,
    n_words: int = 8,
    error_threshold: int = 8,
    max_rounds: int = 3,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
) -> LifecyclePoint:
    """Run a job series through one fabric under one policy; measure it.

    The same ``seed`` drives the same temporal fault event streams for
    every policy, so two configurations face an identical fault history
    and differ only in how the watchdog responds to it.
    """
    obs = get_observer()
    source = f"lifecycle/{config.name}"
    if obs.enabled:
        obs.trace.emit(
            "lifecycle_point_start",
            source=source,
            process=process.describe(),
            policy=config.name,
            jobs=jobs,
            seed=seed,
        )
    sim = GridSimulator(
        rows=rows,
        cols=cols,
        error_threshold=error_threshold,
        heartbeat_decay=config.heartbeat_decay,
        lifecycle_policy=config.policy,
        temporal_fault_process=process,
        n_words=n_words,
        seed=seed,
        backend=backend,
        grid_engine=grid_engine,
    )
    total_cells = rows * cols
    alive_cell_cycles = [0, 0]

    def sample_availability() -> None:
        alive_cell_cycles[0] += sim.grid.alive_count()
        alive_cell_cycles[1] += total_cells

    sim.control.add_tick_hook(sample_availability)

    submitted = 0
    delivered_correct = 0
    unanswered = 0
    shed = 0
    next_iid = 0
    with obs.metrics.time("lifecycle.point"):
        for _ in range(jobs):
            instructions = lifecycle_workload(
                n_instructions, start_iid=next_iid
            )
            next_iid += n_instructions
            expected: Dict[int, int] = {
                iid: reference_compute(op, a, b).value
                for iid, op, a, b in instructions
            }
            job = sim.run_instructions(
                instructions, max_rounds=max_rounds, shed_to_capacity=True
            )
            submitted += job.submitted
            delivered_correct += sum(
                1
                for iid, value in job.results.items()
                if expected[iid] == value
            )
            unanswered += len(job.missing)
            shed += job.delivery.shed
    stats = sim.stats()
    availability = (
        alive_cell_cycles[0] / alive_cell_cycles[1]
        if alive_cell_cycles[1]
        else 1.0
    )
    metrics = obs.metrics
    metrics.counter("lifecycle.points").inc()
    metrics.counter("lifecycle.jobs").inc(jobs)
    metrics.counter("lifecycle.submitted").inc(submitted)
    metrics.counter("lifecycle.delivered_correct").inc(delivered_correct)
    metrics.counter("lifecycle.unanswered").inc(unanswered)
    metrics.counter("lifecycle.fault_events").inc(stats.temporal_fault_events)
    if obs.enabled:
        obs.trace.emit(
            "lifecycle_point_end",
            source=source,
            process=process.describe(),
            policy=config.name,
            submitted=submitted,
            delivered_correct=delivered_correct,
            cycles=stats.cycles,
            availability=availability,
        )
    return LifecyclePoint(
        process=process.describe(),
        policy=config.name,
        jobs=jobs,
        submitted=submitted,
        delivered_correct=delivered_correct,
        total_cycles=stats.cycles,
        availability=availability,
        fault_events=stats.temporal_fault_events,
        quarantines=stats.quarantines,
        readmissions=stats.readmissions,
        retired=len(stats.retired_cells),
        shed=shed,
        unanswered=unanswered,
    )


def lifecycle_sweep(
    processes: Optional[Sequence[TemporalFaultProcess]] = None,
    policies: Optional[Sequence[PolicyConfig]] = None,
    *,
    jobs: int = 6,
    n_instructions: int = 96,
    rows: int = 4,
    cols: int = 4,
    n_words: int = 8,
    error_threshold: int = 8,
    max_rounds: int = 3,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
) -> List[LifecyclePoint]:
    """Sweep fault processes x lifecycle policies."""
    if processes is None:
        processes = default_processes()
    if policies is None:
        policies = (permanent_policy(), self_healing_policy())
    points: List[LifecyclePoint] = []
    for process in processes:
        for config in policies:
            points.append(
                run_lifecycle_point(
                    process,
                    config,
                    jobs=jobs,
                    n_instructions=n_instructions,
                    rows=rows,
                    cols=cols,
                    n_words=n_words,
                    error_threshold=error_threshold,
                    max_rounds=max_rounds,
                    seed=seed,
                    backend=backend,
                    grid_engine=grid_engine,
                )
            )
    return points


def encode_lifecycle_point(point: LifecyclePoint) -> Dict[str, Any]:
    """Lossless JSON form of one :class:`LifecyclePoint`.

    Strings, ints, and one float (``availability``); JSON round-trips
    each exactly, preserving the byte-identical resume guarantee.
    """
    return asdict(point)


def decode_lifecycle_point(payload: Dict[str, Any]) -> LifecyclePoint:
    """Inverse of :func:`encode_lifecycle_point` (exact round-trip)."""
    return LifecyclePoint(**payload)


def lifecycle_sweep_resilient(
    runtime,
    processes: Optional[Sequence[TemporalFaultProcess]] = None,
    policies: Optional[Sequence[PolicyConfig]] = None,
    *,
    jobs: int = 6,
    n_instructions: int = 96,
    rows: int = 4,
    cols: int = 4,
    n_words: int = 8,
    error_threshold: int = 8,
    max_rounds: int = 3,
    seed: int = 2004,
    backend: Optional[str] = None,
    grid_engine: str = "dense",
):
    """:func:`lifecycle_sweep` under the crash-safe campaign runtime.

    ``runtime`` is a :class:`repro.perf.ResilientRuntime`.  Returns the
    :class:`~repro.perf.ResilientOutcome` whose ``results`` hold the
    sweep's :class:`LifecyclePoint`\\ s in :func:`lifecycle_sweep` order
    (``None`` for deadline-skipped cells); a complete outcome's points
    equal an uninterrupted sweep's.
    """
    from repro.perf.resilient import ResilientRunner

    if processes is None:
        processes = default_processes()
    if policies is None:
        policies = (permanent_policy(), self_healing_policy())
    processes = list(processes)
    policies = list(policies)
    tasks = [
        (process_index, policy_index)
        for process_index in range(len(processes))
        for policy_index in range(len(policies))
    ]
    config = {
        "experiment": "lifecycle-sweep",
        "processes": [process.describe() for process in processes],
        "policies": [
            {
                "name": config_.name,
                "heartbeat_decay": config_.heartbeat_decay,
                "policy": asdict(config_.policy),
            }
            for config_ in policies
        ],
        "jobs": jobs,
        "n_instructions": n_instructions,
        "rows": rows,
        "cols": cols,
        "n_words": n_words,
        "error_threshold": error_threshold,
        "max_rounds": max_rounds,
        "seed": seed,
    }

    def run_chunk(_index: int, chunk: Sequence[Tuple[int, int]]):
        return [
            run_lifecycle_point(
                processes[process_index],
                policies[policy_index],
                jobs=jobs,
                n_instructions=n_instructions,
                rows=rows,
                cols=cols,
                n_words=n_words,
                error_threshold=error_threshold,
                max_rounds=max_rounds,
                seed=seed,
                backend=backend,
                grid_engine=grid_engine,
            )
            for process_index, policy_index in chunk
        ]

    runner = ResilientRunner(
        run_chunk,
        runtime=runtime,
        config=config,
        kind="lifecycle-points",
        encode=encode_lifecycle_point,
        decode=decode_lifecycle_point,
    )
    return runner.run(tasks)


def lifecycle_table_text(points: Sequence[LifecyclePoint]) -> str:
    """Render a sweep as the EXPERIMENTS-style fixed-width table."""
    from repro.experiments.report import format_table

    rows: List[Tuple[str, ...]] = []
    for p in points:
        rows.append(
            (
                p.process,
                p.policy,
                f"{100 * p.correct_fraction:.1f}%",
                f"{p.goodput:.1f}",
                f"{100 * p.availability:.1f}%",
                str(p.quarantines),
                str(p.readmissions),
                str(p.retired),
                str(p.shed),
                str(p.total_cycles),
            )
        )
    return format_table(
        (
            "fault process",
            "policy",
            "correct",
            "goodput/kcyc",
            "avail",
            "quar",
            "readmit",
            "retired",
            "shed",
            "cycles",
        ),
        rows,
    )
