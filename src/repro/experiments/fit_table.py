"""FIT-rate translations and the paper's headline reliability claims.

Section 4 translates injected fault percentages into raw FIT rates at a
2 GHz computation clock (worked example: ``aluss`` at 1 % ~ 50 faults per
cycle ~ 3.6e23 FIT).  Section 5 / the abstract state the headline results:
100 % correct computation at FIT rates up to ~1e23 and 98 % at rates in
excess of 1e24, twenty orders of magnitude above the ~5e4 FIT of
contemporary CMOS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.alu.variants import TABLE2_SITE_COUNTS
from repro.experiments.figures import sweep_variant
from repro.experiments.report import format_table
from repro.faults.fit import CMOS_REFERENCE_FIT, fit_for_fault_fraction


def fit_rows(
    variant: str = "aluss",
    percentages: Sequence[float] = (0.05, 0.1, 0.5, 1, 2, 3, 5, 10),
) -> List[Tuple[float, float, float]]:
    """(percent, faults per cycle, FIT) translation rows for a variant."""
    sites = TABLE2_SITE_COUNTS[variant]
    rows = []
    for percent in percentages:
        fraction = percent / 100.0
        rows.append(
            (percent, fraction * sites, fit_for_fault_fraction(fraction, sites))
        )
    return rows


def fit_table_text(variant: str = "aluss") -> str:
    """Render the percentage -> FIT translation for one variant."""
    rows = [
        (f"{pct:g}", f"{faults:.1f}", f"{fit:.2e}")
        for pct, faults, fit in fit_rows(variant)
    ]
    return (
        f"Injected fault percentage to raw FIT rate ({variant}, "
        f"{TABLE2_SITE_COUNTS[variant]} sites, 2 GHz)\n"
        + format_table(("percent", "faults/cycle", "FIT"), rows)
    )


@dataclass(frozen=True)
class HeadlineClaim:
    """One abstract-level claim and our measured counterpart."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def headline_claims(
    trials_per_workload: int = 5, seed: int = 2004
) -> List[HeadlineClaim]:
    """Check the paper's three headline numbers against fresh runs.

    * 100 % correct computation at raw FIT rates as high as ~1e23
      (``aluss`` at <= 1 % injected faults);
    * ~98 % correct at FIT rates in excess of 1e24 (``aluss`` at 3 %);
    * both FIT rates are ~20 orders of magnitude above CMOS's ~5e4 FIT.
    """
    points = {
        p.fault_percent: p
        for p in sweep_variant(
            "aluss",
            fault_percents=(1, 3),
            trials_per_workload=trials_per_workload,
            seed=seed,
        )
    }
    sites = TABLE2_SITE_COUNTS["aluss"]
    one_pct = points[1]
    three_pct = points[3]

    claims = [
        HeadlineClaim(
            claim="100% correct at raw FIT ~ 1e23 (aluss @ 1% injected)",
            paper_value="100.0",
            measured_value=f"{one_pct.percent_correct:.1f}",
            holds=one_pct.percent_correct >= 99.0,
        ),
        HeadlineClaim(
            claim="~98% correct at raw FIT > 1e24 (aluss @ 3% injected)",
            paper_value="98.0",
            measured_value=f"{three_pct.percent_correct:.1f}",
            holds=three_pct.percent_correct >= 94.0,
        ),
        HeadlineClaim(
            claim="FIT at 3% injected exceeds 1e24",
            paper_value="1e24",
            measured_value=f"{fit_for_fault_fraction(0.03, sites):.2e}",
            holds=fit_for_fault_fraction(0.03, sites) > 1e24,
        ),
        HeadlineClaim(
            claim="~20 orders of magnitude above contemporary CMOS FIT",
            paper_value="20",
            measured_value=(
                f"{math.log10(fit_for_fault_fraction(0.03, sites) / CMOS_REFERENCE_FIT):.1f}"
            ),
            holds=(
                fit_for_fault_fraction(0.03, sites) / CMOS_REFERENCE_FIT
                >= 1e19
            ),
        ),
    ]
    return claims


def headline_claims_text(**kwargs) -> str:
    """Render the headline-claim comparison table."""
    rows = [
        (c.claim, c.paper_value, c.measured_value, "OK" if c.holds else "FAIL")
        for c in headline_claims(**kwargs)
    ]
    return "Headline claims (paper vs measured)\n" + format_table(
        ("claim", "paper", "measured", "status"), rows
    )
