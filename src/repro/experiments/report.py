"""Plain-text rendering of experiment output.

The paper's tables and figure series are reproduced as fixed-width text so
benchmark runs and EXPERIMENTS.md can show them without a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render rows as a fixed-width ASCII table with a header rule."""
    if not headers:
        raise ValueError("format_table needs at least one column")
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        cells.append([str(c) for c in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    for r, row_cells in enumerate(cells):
        line = "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row_cells))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    y_format: str = "{:6.1f}",
) -> str:
    """Render figure series as one row per x value, one column per series.

    This is the textual equivalent of the paper's Figures 7-9: injected
    fault percentage down the side, one ALU per column.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_label] + names
    rows = []
    for i, x in enumerate(x_values):
        row = [f"{x:g}"] + [y_format.format(series[name][i]) for name in names]
        rows.append(row)
    return format_table(headers, rows)


def format_percent(value: float) -> str:
    """Uniform percent formatting used across reports."""
    return f"{value:.1f}"
