"""Manufacturing-yield experiment (abstract / Section 1 threat model).

"Instead of trying to manufacture defect-free chips ... future processor
architectures must be designed to adapt to, and coexist with, substantial
numbers of manufacturing defects and high transient error rates."

This experiment manufactures many instances of each ALU variant at a
given stuck-at defect density and scores:

* **perfect yield** -- fraction of parts computing the full test-vector
  set correctly with no transient faults;
* **degraded accuracy** -- mean percent-correct of the *defective* parts
  over the paper's image workloads, with and without transient faults on
  top, quantifying graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.alu.base import FaultableUnit, Opcode
from repro.alu.reference import reference_compute
from repro.alu.variants import build_alu
from repro.faults.campaign import FaultCampaign
from repro.faults.defects import DefectiveUnit, sample_defect_map
from repro.faults.mask import ExactFractionMask
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads

#: Functional test vectors: every opcode over corner and mixed operands.
TEST_OPERANDS: Tuple[Tuple[int, int], ...] = (
    (0x00, 0x00), (0xFF, 0xFF), (0xAA, 0x55), (0x0F, 0xF0),
    (0x01, 0xFF), (0x80, 0x80), (0xC8, 0x64), (0x3C, 0xA7),
)


def functional_test(unit: FaultableUnit) -> bool:
    """True when the unit passes the full vector set fault-free."""
    for op in Opcode:
        for a, b in TEST_OPERANDS:
            got = unit.compute(int(op), a, b)
            want = reference_compute(int(op), a, b)
            if (got.value, got.carry) != (want.value, want.carry):
                return False
    return True


def manufacture(
    variant: str, density: float, n_parts: int, seed: int = 0
) -> List[DefectiveUnit]:
    """Fabricate ``n_parts`` instances of a variant at a defect density.

    All parts share one pristine design object (computation is pure);
    each gets an independent defect map.
    """
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    design = build_alu(variant)
    parts = []
    for i in range(n_parts):
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        defects = sample_defect_map(design.site_count, density, rng)
        parts.append(DefectiveUnit(design, defects))
    return parts


@dataclass(frozen=True)
class YieldPoint:
    """Yield metrics for one (variant, density) cell."""

    variant: str
    density: float
    n_parts: int
    perfect_yield: float
    mean_accuracy: float         # image-workload accuracy, no transients
    mean_accuracy_transient: float  # with transients on top

    @property
    def any_defect_probability(self) -> float:
        """Probability a part has at least one defective site."""
        sites = build_alu(self.variant).site_count
        return 1.0 - (1.0 - self.density) ** sites


def yield_at(
    variant: str,
    density: float,
    n_parts: int = 20,
    transient_fraction: float = 0.01,
    seed: int = 0,
) -> YieldPoint:
    """Measure yield and degradation for one variant at one density."""
    parts = manufacture(variant, density, n_parts, seed=seed)
    workloads = paper_workloads(gradient(8, 8))

    passing = sum(1 for part in parts if functional_test(part))
    accuracies = []
    accuracies_transient = []
    for i, part in enumerate(parts):
        clean = FaultCampaign(part, ExactFractionMask(0.0), seed=seed + i)
        accuracies.append(
            clean.run_workload_suite(workloads, 1).percent_correct
        )
        noisy = FaultCampaign(
            part, ExactFractionMask(transient_fraction), seed=seed + i
        )
        accuracies_transient.append(
            noisy.run_workload_suite(workloads, 1).percent_correct
        )

    return YieldPoint(
        variant=variant,
        density=density,
        n_parts=n_parts,
        perfect_yield=passing / n_parts,
        mean_accuracy=float(np.mean(accuracies)),
        mean_accuracy_transient=float(np.mean(accuracies_transient)),
    )


def yield_sweep(
    variants: Sequence[str] = ("aluncmos", "alunn", "aluns", "aluss"),
    densities: Sequence[float] = (1e-4, 5e-4, 1e-3, 5e-3),
    n_parts: int = 15,
    seed: int = 0,
) -> Dict[str, List[YieldPoint]]:
    """Sweep defect densities per variant."""
    return {
        variant: [
            yield_at(variant, d, n_parts=n_parts, seed=seed)
            for d in densities
        ]
        for variant in variants
    }


def yield_table_text(points: Dict[str, List[YieldPoint]]) -> str:
    """Render a yield sweep as a fixed-width table."""
    from repro.experiments.report import format_table

    rows = []
    for variant, series in points.items():
        for p in series:
            rows.append(
                (
                    variant,
                    f"{p.density:g}",
                    f"{100 * p.perfect_yield:.0f}%",
                    f"{p.mean_accuracy:.1f}",
                    f"{p.mean_accuracy_transient:.1f}",
                )
            )
    return format_table(
        ("ALU", "defect density", "perfect yield",
         "accuracy (defects only)", "accuracy (+1% transients)"),
        rows,
    )
