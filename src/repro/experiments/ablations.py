"""Ablation studies on the design choices behind the paper's results.

None of these appear in the paper; they answer the obvious follow-on
questions its Section 5 discussion raises:

* **Decoder semantics** -- how much of ``alunh``'s loss to ``alunn`` comes
  from the output-corrector architecture (false positives on check-bit
  syndromes) versus the Hamming code itself?  ``hamming-sec`` is the
  textbook decoder, ``hamming-fp`` the fully pessimistic one.
* **Redundancy order** -- is 3x the right bit-level replication, or do
  5x / 7x strings buy their area back?
* **Voter construction** -- the paper votes through fault-prone LUTs
  coded the same way as the ALU's tables; what does a differently-coded
  (or gate-level) voter cost?
* **Mask policy** -- exact-fraction (the paper's semantics) versus
  independent Bernoulli flips.
* **Hamming block size** -- 16-bit blocks match Table 2's 672 sites; how
  does protection scale with block granularity?
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.alu.base import FaultableUnit
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU
from repro.alu.voters import make_voter
from repro.faults.campaign import FaultCampaign
from repro.faults.mask import BernoulliMask, ExactFractionMask
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads

#: Default fault percentages for the ablation sweeps (a dense low-end).
ABLATION_PERCENTS: Tuple[float, ...] = (0, 0.5, 1, 2, 3, 5, 9)


def _score(
    alu: FaultableUnit,
    percent: float,
    trials_per_workload: int,
    seed: int,
    policy_factory=ExactFractionMask,
) -> float:
    workloads = paper_workloads(gradient(8, 8))
    campaign = FaultCampaign(alu, policy_factory(percent / 100.0), seed=seed)
    return campaign.run_workload_suite(workloads, trials_per_workload).percent_correct


def _sweep(
    alu: FaultableUnit,
    percents: Sequence[float],
    trials_per_workload: int,
    seed: int,
    policy_factory=ExactFractionMask,
) -> List[float]:
    return [
        _score(alu, pct, trials_per_workload, seed, policy_factory)
        for pct in percents
    ]


def hamming_semantics_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 11,
) -> Dict[str, List[float]]:
    """Compare information-code decoder semantics against no code.

    Expected shape: ``hamming-sec`` (textbook SEC) and ``hsiao``
    (SEC-DED, never corrects on an even syndrome) beat ``none`` at low
    densities; the paper's output-corrector ``hamming`` loses to
    ``none`` everywhere; the pessimistic ``hamming-fp`` collapses
    fastest.
    """
    series: Dict[str, List[float]] = {}
    for scheme in ("none", "hamming", "hamming-sec", "hamming-fp", "hsiao"):
        alu = SimplexALU(NanoBoxALU(scheme=scheme), name=f"ablate[{scheme}]")
        series[scheme] = _sweep(alu, percents, trials_per_workload, seed)
    return series


def redundancy_order_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 12,
) -> Dict[str, List[float]]:
    """Sweep bit-level replication order: 1x (none), 3x, 5x, 7x strings."""
    series: Dict[str, List[float]] = {}
    for scheme, label in (
        ("none", "1x"),
        ("tmr", "3x"),
        ("5mr", "5x"),
        ("7mr", "7x"),
    ):
        alu = SimplexALU(NanoBoxALU(scheme=scheme), name=f"ablate[{label}]")
        series[label] = _sweep(alu, percents, trials_per_workload, seed)
    return series


def voter_coding_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 13,
) -> Dict[str, List[float]]:
    """Space-redundant TMR-LUT cores with differently built voters."""
    series: Dict[str, List[float]] = {}
    for voter_kind in ("tmr", "none", "hamming", "cmos"):
        alu = SpaceRedundantALU(
            lambda: NanoBoxALU(scheme="tmr"),
            make_voter(voter_kind),
            name=f"ablate[voter:{voter_kind}]",
        )
        series[f"voter:{voter_kind}"] = _sweep(
            alu, percents, trials_per_workload, seed
        )
    return series


def mask_policy_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 14,
) -> Dict[str, List[float]]:
    """Exact-fraction versus Bernoulli injection on the TMR ALU.

    The two should agree closely -- the exact-count draw is a conditioned
    version of the Bernoulli draw -- validating that the paper's injection
    semantics is not doing hidden work.
    """
    alu = SimplexALU(NanoBoxALU(scheme="tmr"), name="ablate[policy]")
    return {
        "exact": _sweep(alu, percents, trials_per_workload, seed,
                        ExactFractionMask),
        "bernoulli": _sweep(alu, percents, trials_per_workload, seed,
                            BernoulliMask),
    }


def hamming_block_size_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 15,
) -> Dict[str, List[float]]:
    """Hamming protection granularity: 8-, 16-, and 32-bit blocks.

    Smaller blocks mean fewer non-addressed bits per syndrome, hence fewer
    false positives, at higher check-bit cost (the 16-bit block is what
    reproduces Table 2's 672 sites).
    """
    series: Dict[str, List[float]] = {}
    for block in (8, 16, 32):
        alu = SimplexALU(
            NanoBoxALU(scheme="hamming", block_size=block),
            name=f"ablate[block{block}]",
        )
        series[f"block{block}"] = _sweep(alu, percents, trials_per_workload, seed)
    return series
