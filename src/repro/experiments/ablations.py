"""Ablation studies on the design choices behind the paper's results.

None of these appear in the paper; they answer the obvious follow-on
questions its Section 5 discussion raises:

* **Decoder semantics** -- how much of ``alunh``'s loss to ``alunn`` comes
  from the output-corrector architecture (false positives on check-bit
  syndromes) versus the Hamming code itself?  ``hamming-sec`` is the
  textbook decoder, ``hamming-fp`` the fully pessimistic one.
* **Redundancy order** -- is 3x the right bit-level replication, or do
  5x / 7x strings buy their area back?
* **Voter construction** -- the paper votes through fault-prone LUTs
  coded the same way as the ALU's tables; what does a differently-coded
  (or gate-level) voter cost?
* **Mask policy** -- exact-fraction (the paper's semantics) versus
  independent Bernoulli flips.
* **Hamming block size** -- 16-bit blocks match Table 2's 672 sites; how
  does protection scale with block granularity?

Every ablation accepts ``jobs`` (process-pool width; 1 = inline) and
``batched`` (vectorized evaluation, bit-identical to scalar); each
series cell becomes one :class:`~repro.perf.CampaignWorkItem`, so a
single ablation's cells parallelise across its whole grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec, run_campaign_items

#: Default fault percentages for the ablation sweeps (a dense low-end).
ABLATION_PERCENTS: Tuple[float, ...] = (0, 0.5, 1, 2, 3, 5, 9)


def sweep_unit(
    alu,
    percents: Sequence[float],
    trials_per_workload: int = 5,
    seed: int = 0,
    batched: bool = True,
    backend: Optional[str] = None,
) -> List[float]:
    """Sweep one already-built unit over fault percentages, in process.

    For ad-hoc studies on units with no :class:`~repro.perf.ALUSpec`
    recipe (custom decoders, experimental wrappers): runs serially since
    a live unit cannot cross a process boundary.  Campaign semantics
    match :func:`_run_series` exactly.
    """
    from repro.faults.campaign import FaultCampaign
    from repro.faults.mask import ExactFractionMask
    from repro.workloads.bitmap import gradient
    from repro.workloads.imaging import paper_workloads

    workloads = paper_workloads(gradient(8, 8))
    scores = []
    for percent in percents:
        campaign = FaultCampaign(
            alu, ExactFractionMask(percent / 100.0), seed=seed
        )
        result = campaign.run_workload_suite(
            workloads, trials_per_workload, batched=batched, backend=backend
        )
        scores.append(result.percent_correct)
    return scores

#: One ablation series: (legend key, unit recipe, policy kind).
_SeriesEntry = Tuple[str, ALUSpec, str]


def _run_series(
    entries: Sequence[_SeriesEntry],
    percents: Sequence[float],
    trials_per_workload: int,
    seed: int,
    jobs: int,
    batched: bool,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Run the full (series, percent) grid through the campaign executor."""
    items = [
        CampaignWorkItem(
            alu=spec,
            policy=PolicySpec(kind=policy_kind, value=percent / 100.0),
            trials_per_workload=trials_per_workload,
            seed=seed,
            batched=batched,
            backend=backend,
        )
        for _, spec, policy_kind in entries
        for percent in percents
    ]
    results = run_campaign_items(items, jobs=jobs)
    series: Dict[str, List[float]] = {}
    index = 0
    for key, _, _ in entries:
        series[key] = [
            results[index + offset].percent_correct
            for offset in range(len(percents))
        ]
        index += len(percents)
    return series


def hamming_semantics_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 11,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Compare information-code decoder semantics against no code.

    Expected shape: ``hamming-sec`` (textbook SEC) and ``hsiao``
    (SEC-DED, never corrects on an even syndrome) beat ``none`` at low
    densities; the paper's output-corrector ``hamming`` loses to
    ``none`` everywhere; the pessimistic ``hamming-fp`` collapses
    fastest.
    """
    entries = [
        (scheme, ALUSpec.simplex(scheme, label=f"ablate[{scheme}]"), "exact")
        for scheme in ("none", "hamming", "hamming-sec", "hamming-fp", "hsiao")
    ]
    return _run_series(
        entries, percents, trials_per_workload, seed, jobs, batched, backend
    )


def redundancy_order_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 12,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Sweep bit-level replication order: 1x (none), 3x, 5x, 7x strings."""
    entries = [
        (label, ALUSpec.simplex(scheme, label=f"ablate[{label}]"), "exact")
        for scheme, label in (
            ("none", "1x"),
            ("tmr", "3x"),
            ("5mr", "5x"),
            ("7mr", "7x"),
        )
    ]
    return _run_series(
        entries, percents, trials_per_workload, seed, jobs, batched, backend
    )


def voter_coding_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 13,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Space-redundant TMR-LUT cores with differently built voters."""
    entries = [
        (
            f"voter:{voter_kind}",
            ALUSpec.space(
                "tmr", voter_kind, label=f"ablate[voter:{voter_kind}]"
            ),
            "exact",
        )
        for voter_kind in ("tmr", "none", "hamming", "cmos")
    ]
    return _run_series(
        entries, percents, trials_per_workload, seed, jobs, batched, backend
    )


def mask_policy_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 14,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Exact-fraction versus Bernoulli injection on the TMR ALU.

    The two should agree closely -- the exact-count draw is a conditioned
    version of the Bernoulli draw -- validating that the paper's injection
    semantics is not doing hidden work.
    """
    spec = ALUSpec.simplex("tmr", label="ablate[policy]")
    entries = [("exact", spec, "exact"), ("bernoulli", spec, "bernoulli")]
    return _run_series(
        entries, percents, trials_per_workload, seed, jobs, batched, backend
    )


def hamming_block_size_ablation(
    percents: Sequence[float] = ABLATION_PERCENTS,
    trials_per_workload: int = 5,
    seed: int = 15,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, List[float]]:
    """Hamming protection granularity: 8-, 16-, and 32-bit blocks.

    Smaller blocks mean fewer non-addressed bits per syndrome, hence fewer
    false positives, at higher check-bit cost (the 16-bit block is what
    reproduces Table 2's 672 sites).
    """
    entries = [
        (
            f"block{block}",
            ALUSpec.simplex(
                "hamming", block_size=block, label=f"ablate[block{block}]"
            ),
            "exact",
        )
        for block in (8, 16, 32)
    ]
    return _run_series(
        entries, percents, trials_per_workload, seed, jobs, batched, backend
    )
