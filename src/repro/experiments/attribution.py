"""Fault attribution: which box of the hierarchy lets errors through?

The recursive argument (paper Section 2) says faults uncorrectable at
one level are caught one level up.  This study instruments that claim:
running a redundant ALU under injection with the
:class:`~repro.core.telemetry.ErrorLedger`, it reports

* the masking probability as a function of how many faults landed in one
  computation (the hierarchy's measured coverage curve), and
* for *unmasked* computations, how the faults were distributed over the
  unit's segments (cores vs voter vs holding registers) compared to the
  overall distribution -- exposing which structures are the weak points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.alu.variants import build_alu
from repro.core.telemetry import ErrorLedger
from repro.faults.mask import ExactFractionMask
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import paper_workloads


@dataclass(frozen=True)
class AttributionReport:
    """Outcome of one attribution study."""

    variant: str
    fault_fraction: float
    observations: int
    masked: int
    unmasked: int
    coverage_by_count: Dict[int, float]
    #: segment -> cumulative faults over all computations
    segment_faults: Dict[str, int]
    #: segment -> cumulative faults over *unmasked* computations only
    unmasked_segment_faults: Dict[str, int]

    @property
    def coverage(self) -> float:
        faulty = self.masked + self.unmasked
        return self.masked / faulty if faulty else 1.0

    def segment_shares(self) -> List[Tuple[str, float, float]]:
        """(segment, share of all faults, share of unmasking faults)."""
        total_all = sum(self.segment_faults.values()) or 1
        total_bad = sum(self.unmasked_segment_faults.values()) or 1
        rows = []
        for name in self.segment_faults:
            rows.append(
                (
                    name,
                    self.segment_faults[name] / total_all,
                    self.unmasked_segment_faults.get(name, 0) / total_bad,
                )
            )
        return rows

    def overexposed_segments(self, threshold: float = 1.1) -> List[str]:
        """Segments whose share among unmasked computations exceeds their
        overall share by ``threshold`` -- the hierarchy's weak points."""
        weak = []
        for name, share_all, share_bad in self.segment_shares():
            if share_all > 0 and share_bad / share_all >= threshold:
                weak.append(name)
        return weak


def attribution_study(
    variant: str = "aluss",
    fault_fraction: float = 0.03,
    observations: int = 600,
    seed: int = 0,
) -> AttributionReport:
    """Run the instrumented injection campaign for one variant."""
    if observations <= 0:
        raise ValueError(f"observations must be positive, got {observations}")
    unit = build_alu(variant)
    ledger = ErrorLedger(unit)
    policy = ExactFractionMask(fault_fraction)
    rng = np.random.default_rng(seed)
    instructions = []
    for stream in paper_workloads(gradient(8, 8)).values():
        instructions.extend(stream)

    unmasked_segments: Dict[str, int] = {
        seg.name: 0 for seg in unit.site_space.segments
    }
    for i in range(observations):
        op, a, b, _expected = instructions[i % len(instructions)]
        mask = policy.generate(unit.site_count, rng)
        report = ledger.observe(op, a, b, mask)
        if report.total_faults and not report.output_correct:
            for name, count in report.faults_by_segment.items():
                unmasked_segments[name] += count

    return AttributionReport(
        variant=variant,
        fault_fraction=fault_fraction,
        observations=ledger.observations,
        masked=ledger.masked_count,
        unmasked=ledger.unmasked_count,
        coverage_by_count=ledger.coverage_by_fault_count(),
        segment_faults=ledger.segment_faults,
        unmasked_segment_faults=unmasked_segments,
    )


def attribution_table_text(report: AttributionReport) -> str:
    """Render the per-segment attribution comparison."""
    from repro.experiments.report import format_table

    rows = [
        (name, f"{100 * share_all:.1f}%", f"{100 * share_bad:.1f}%",
         f"{share_bad / share_all:.2f}" if share_all else "-")
        for name, share_all, share_bad in report.segment_shares()
    ]
    header = (
        f"Fault attribution: {report.variant} at "
        f"{100 * report.fault_fraction:g}% injected "
        f"(coverage {100 * report.coverage:.1f}% over "
        f"{report.masked + report.unmasked} faulty computations)\n"
    )
    return header + format_table(
        ("segment", "share of all faults", "share in unmasked runs",
         "exposure ratio"),
        rows,
    )
