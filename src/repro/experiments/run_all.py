"""Regenerate every paper table and figure and print/save the report.

Usage::

    python -m repro.experiments.run_all [--quick] [--jobs N] [--out FILE]

``--quick`` trims trial counts for a fast smoke run; the default settings
match the paper's methodology (five trials of each of the two workloads
per plotted point).  ``--jobs N`` fans the figure and ablation campaigns
out over ``N`` worker processes; the report text is byte-identical to a
serial run (campaign streams are seed-derived, never order-derived).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.area import area_table_text, headline_overhead
from repro.experiments.figures import (
    PAPER_FAULT_PERCENTAGES,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.fit_table import fit_table_text, headline_claims_text
from repro.experiments.report import format_series
from repro.experiments.tables import table1_text, table2_text
from repro.experiments import ablations


def build_report(quick: bool = False, seed: int = 2004, jobs: int = 1) -> str:
    """Run every experiment and assemble the full text report.

    ``jobs`` widens the campaign process pool for the figures and
    ablations; any value produces byte-identical report text.
    """
    trials = 2 if quick else 5
    percents = (0, 0.5, 1, 3, 9, 30) if quick else PAPER_FAULT_PERCENTAGES
    sections: List[str] = []

    sections.append("== Table 1 ==\n" + table1_text())
    sections.append("== Table 2 ==\n" + table2_text())

    for fig_fn, label in ((figure7, "Figure 7"), (figure8, "Figure 8"),
                          (figure9, "Figure 9")):
        result = fig_fn(
            fault_percents=percents, trials_per_workload=trials, seed=seed,
            jobs=jobs,
        )
        sections.append(
            f"== {label} ==\n{result.to_text()}\n"
            f"(max per-point stddev: {result.max_stddev():.2f} points; "
            f"paper reported a worst case of 24.51)"
        )

    sections.append("== FIT translation ==\n" + fit_table_text("aluss"))
    sections.append(
        "== Headline claims ==\n"
        + headline_claims_text(trials_per_workload=trials, seed=seed)
    )
    sections.append(
        "== Area overhead ==\n"
        + area_table_text()
        + f"\nheadline aluss/alunn = {headline_overhead():.2f}x"
    )

    ablation_runs = (
        ("Hamming decoder semantics", ablations.hamming_semantics_ablation),
        ("Bit-level redundancy order", ablations.redundancy_order_ablation),
        ("Voter construction", ablations.voter_coding_ablation),
        ("Mask policy", ablations.mask_policy_ablation),
        ("Hamming block size", ablations.hamming_block_size_ablation),
    )
    for title, fn in ablation_runs:
        series = fn(trials_per_workload=trials, jobs=jobs)
        sections.append(
            f"== Ablation: {title} ==\n"
            + format_series("fault%", list(ablations.ABLATION_PERCENTS), series)
        )

    sections.append(
        "== Extension: manufacturing yield ==\n" + _yield_section(quick, seed)
    )
    sections.append(
        "== Extension: system-check scaling ==\n" + _scaling_section(seed)
    )
    sections.append(
        "== Analysis: fault budgets at 98% ==\n" + _design_space_section()
    )

    return "\n\n".join(sections) + "\n"


def _yield_section(quick: bool, seed: int) -> str:
    from repro.experiments.defect_yield import yield_sweep, yield_table_text

    points = yield_sweep(
        variants=("aluncmos", "alunn", "aluns"),
        densities=(5e-4, 2e-3, 5e-3),
        n_parts=6 if quick else 12,
        seed=seed,
    )
    return yield_table_text(points)


def _scaling_section(seed: int) -> str:
    from repro.experiments.scaling import (
        detection_latency,
        detection_table_text,
        pipeline_scaling,
        pipeline_table_text,
    )

    detection = detection_latency(
        sizes=((2, 2), (4, 4), (8, 8)), trials=40, seed=seed
    )
    pipeline = pipeline_scaling(sizes=((2, 2), (2, 4), (4, 4)), seed=seed)
    return detection_table_text(detection) + "\n\n" + pipeline_table_text(pipeline)


def _design_space_section() -> str:
    from repro.analysis.design_space import fault_budget, fit_budget
    from repro.experiments.report import format_table

    rows = []
    for scheme in ("none", "hamming", "tmr", "5mr", "7mr"):
        rows.append(
            (
                scheme,
                f"{fault_budget(scheme, 98.0) * 100:.3f}%",
                f"{fit_budget(scheme, 98.0):.2e}",
            )
        )
    return format_table(("scheme", "max injected %", "max raw FIT"), rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced trials / sweep points"
    )
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="campaign worker processes (1 = serial; output is identical)",
    )
    parser.add_argument("--out", type=str, default=None, help="also write to file")
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick, seed=args.seed, jobs=args.jobs)
    sys.stdout.write(report)
    if args.out:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.out, report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
