"""Dependency-free ASCII charts for figure series.

The paper's Figures 7-9 are line charts of percent-correct versus
injected fault percentage.  ``ascii_chart`` renders the same series in a
terminal: one column per swept percentage, one marker character per ALU
variant, a 0-100 y-axis, and a legend.  Used by the CLI's ``sweep
--chart`` and the ``fault_sweep`` example.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Marker characters assigned to series in insertion order.
MARKERS = "o*x+#@%&"


def ascii_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    height: int = 18,
    y_min: float = 0.0,
    y_max: float = 100.0,
    col_width: int = 6,
) -> str:
    """Render series as a fixed-width ASCII chart.

    Args:
        x_labels: one label per x position (e.g. fault percentages).
        series: name -> y values (same length as ``x_labels``).
        height: chart rows between ``y_min`` and ``y_max``.
        y_min, y_max: y-axis range.
        col_width: character columns per x position.

    Overlapping markers at the same cell are drawn as ``'='``.
    """
    if height < 2:
        raise ValueError(f"height must be at least 2, got {height}")
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")
    if len(series) > len(MARKERS):
        raise ValueError(
            f"at most {len(MARKERS)} series supported, got {len(series)}"
        )
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected "
                f"{len(x_labels)}"
            )

    n_cols = len(x_labels)
    span = y_max - y_min
    grid: List[List[str]] = [
        [" "] * (n_cols * col_width) for _ in range(height + 1)
    ]

    markers = {name: MARKERS[i] for i, name in enumerate(series)}
    for name, values in series.items():
        marker = markers[name]
        for i, value in enumerate(values):
            clamped = min(max(value, y_min), y_max)
            row = height - round((clamped - y_min) / span * height)
            col = i * col_width + col_width // 2
            cell = grid[row][col]
            grid[row][col] = marker if cell == " " else "="

    lines: List[str] = []
    for row_index, row in enumerate(grid):
        y_value = y_max - span * row_index / height
        if row_index % max(height // 6, 1) == 0 or row_index == height:
            label = f"{y_value:6.1f} |"
        else:
            label = "       |"
        lines.append(label + "".join(row).rstrip())

    axis = "       +" + "-" * (n_cols * col_width)
    lines.append(axis)
    x_line = "        "
    for label in x_labels:
        x_line += str(label).center(col_width)
    lines.append(x_line.rstrip())
    legend = "        legend: " + "  ".join(
        f"{markers[name]}={name}" for name in series
    ) + "  (= overlap)"
    lines.append(legend)
    return "\n".join(lines)


def figure_chart(result, height: int = 18) -> str:
    """Chart a :class:`~repro.experiments.figures.FigureResult`."""
    labels = [f"{p:g}" for p in result.fault_percents]
    return (
        f"{result.title}\n"
        + ascii_chart(labels, result.series(), height=height)
    )
