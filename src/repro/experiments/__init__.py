"""Experiment harness: regenerate every table and figure of the paper.

* :mod:`repro.experiments.tables` -- Table 1 (ISA) and Table 2 (ALU
  variants and fault-site counts);
* :mod:`repro.experiments.figures` -- Figures 7, 8, 9 (percent-correct
  versus injected fault percentage, grouped by module-level technique);
* :mod:`repro.experiments.fit_table` -- the Section 4/5 FIT-rate
  translations and headline reliability claims;
* :mod:`repro.experiments.area` -- the ~9x area-overhead claim;
* :mod:`repro.experiments.ablations` -- design-choice studies beyond the
  paper (decoder semantics, redundancy order, voter coding, mask policy);
* :mod:`repro.experiments.chaos_fabric` -- link-fault chaos sweeps of the
  CRC + retransmit transport (the fabric analogue of Figures 7-9);
* :mod:`repro.experiments.lifecycle` -- self-healing study: temporal
  fault processes x cell-health lifecycle policies, goodput and
  availability of quarantine + re-admission versus permanent disable;
* :mod:`repro.experiments.run_all` -- regenerate everything and emit the
  EXPERIMENTS.md comparison tables.
"""

from repro.experiments.figures import (
    PAPER_FAULT_PERCENTAGES,
    FigureResult,
    SeriesPoint,
    figure7,
    figure8,
    figure9,
    run_figure,
    sweep_variant,
)
from repro.experiments.tables import table1_text, table2_rows, table2_text
from repro.experiments.fit_table import fit_rows, fit_table_text, headline_claims
from repro.experiments.area import area_rows, area_table_text
from repro.experiments.report import format_series, format_table
from repro.experiments.ascii_chart import ascii_chart, figure_chart
from repro.experiments.defect_yield import yield_at, yield_sweep, yield_table_text
from repro.experiments.export import (
    figure_from_json,
    figure_to_csv,
    figure_to_json,
    records_to_csv,
    records_to_json,
)
from repro.experiments.scaling import (
    detection_latency,
    detection_table_text,
    pipeline_scaling,
    pipeline_table_text,
)
from repro.experiments.chaos_fabric import (
    ChaosPoint,
    chaos_sweep,
    chaos_table_text,
    run_chaos_point,
)
from repro.experiments.lifecycle import (
    LifecyclePoint,
    PolicyConfig,
    lifecycle_sweep,
    lifecycle_table_text,
    permanent_policy,
    run_lifecycle_point,
    self_healing_policy,
)

__all__ = [
    "PAPER_FAULT_PERCENTAGES",
    "ChaosPoint",
    "FigureResult",
    "LifecyclePoint",
    "PolicyConfig",
    "SeriesPoint",
    "area_rows",
    "area_table_text",
    "ascii_chart",
    "chaos_sweep",
    "chaos_table_text",
    "detection_latency",
    "detection_table_text",
    "figure_chart",
    "figure_from_json",
    "lifecycle_sweep",
    "lifecycle_table_text",
    "permanent_policy",
    "run_lifecycle_point",
    "self_healing_policy",
    "figure_to_csv",
    "figure_to_json",
    "figure7",
    "figure8",
    "figure9",
    "fit_rows",
    "fit_table_text",
    "format_series",
    "format_table",
    "headline_claims",
    "pipeline_scaling",
    "pipeline_table_text",
    "records_to_csv",
    "records_to_json",
    "run_figure",
    "sweep_variant",
    "table1_text",
    "table2_rows",
    "table2_text",
    "yield_at",
    "yield_sweep",
    "yield_table_text",
]
