"""System-scaling studies (paper Section 6.2).

The paper's argument against Teramac/Phoenix-style *external*
reconfiguration: "Periodic system testing becomes a critical bottleneck
as computer systems scale in size ... Our NanoBox architecture addresses
the system check bottleneck by distributing the checking circuitry into
the logic blocks themselves."

Two measured studies on our own substrate:

* **failure-detection latency** -- an external surveyor that polls one
  cell per cycle (the periodic-survey model) versus the NanoBox
  watchdog's every-cycle heartbeat sampling.  External latency grows
  with cell count; the watchdog's stays constant.
* **pipeline scaling** -- cycles to run a fixed 64-pixel job as the grid
  grows.  The per-column edge buses parallelise shift-in, so more
  columns shorten the dominant phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.grid.grid import Coord, NanoBoxGrid
from repro.grid.simulator import GridSimulator
from repro.workloads.bitmap import gradient
from repro.workloads.imaging import reverse_video


class ExternalSurveyChecker:
    """Teramac/Phoenix-style periodic surveyor.

    Polls exactly one cell per cycle, round-robin, and reports a failure
    only when its pointer lands on the dead cell -- the survey-cadence
    bottleneck the paper criticises.
    """

    def __init__(self, grid: NanoBoxGrid) -> None:
        self._grid = grid
        self._order: List[Coord] = sorted(
            cell.cell_id for cell in grid.cells()
        )
        self._pointer = 0
        self.cycles_polled = 0

    @property
    def cells_per_survey(self) -> int:
        """Cycles needed for one complete pass over the grid."""
        return len(self._order)

    def poll_one(self) -> List[Coord]:
        """Advance one cycle: test a single cell; report it if dead."""
        coord = self._order[self._pointer]
        self._pointer = (self._pointer + 1) % len(self._order)
        self.cycles_polled += 1
        if not self._grid.cell(*coord).alive:
            return [coord]
        return []


@dataclass(frozen=True)
class DetectionPoint:
    """Mean failure-detection latency for one grid size."""

    rows: int
    cols: int
    cells: int
    external_latency: float
    watchdog_latency: float

    @property
    def ratio(self) -> float:
        """How many times slower the external survey detects."""
        return self.external_latency / self.watchdog_latency


def detection_latency(
    sizes: Sequence[Tuple[int, int]] = ((2, 2), (4, 4), (8, 8)),
    trials: int = 50,
    seed: int = 0,
) -> List[DetectionPoint]:
    """Measure detection latency per grid size for both checkers.

    Per trial: build the grid, kill a random cell at a random phase of
    the surveyor's round, count cycles until each checker reports it.
    The watchdog samples every cell's heartbeat every cycle, so its
    latency is one cycle by construction; the external surveyor needs up
    to a full survey pass.
    """
    points: List[DetectionPoint] = []
    rng = np.random.default_rng(seed)
    for rows, cols in sizes:
        external_samples = []
        for _ in range(trials):
            grid = NanoBoxGrid(rows, cols)
            checker = ExternalSurveyChecker(grid)
            # Advance the surveyor to a random phase, then fail a cell.
            for _ in range(int(rng.integers(checker.cells_per_survey))):
                checker.poll_one()
            victim = (
                int(rng.integers(rows)),
                int(rng.integers(cols)),
            )
            grid.kill_cell(*victim)
            latency = 0
            while True:
                latency += 1
                if checker.poll_one():
                    break
            external_samples.append(latency)
        points.append(
            DetectionPoint(
                rows=rows,
                cols=cols,
                cells=rows * cols,
                external_latency=float(np.mean(external_samples)),
                watchdog_latency=1.0,
            )
        )
    return points


@dataclass(frozen=True)
class PipelinePoint:
    """Cycle budget for the fixed 64-pixel job on one grid size."""

    rows: int
    cols: int
    shift_in: int
    compute: int
    shift_out: int

    @property
    def total(self) -> int:
        return self.shift_in + self.compute + self.shift_out


def pipeline_scaling(
    sizes: Sequence[Tuple[int, int]] = ((2, 2), (2, 4), (4, 4), (4, 8)),
    seed: int = 0,
) -> List[PipelinePoint]:
    """Run the 64-pixel reverse-video job across grid sizes."""
    points: List[PipelinePoint] = []
    for rows, cols in sizes:
        sim = GridSimulator(rows=rows, cols=cols, seed=seed)
        outcome = sim.run_image_job(gradient(8, 8), reverse_video())
        if outcome.pixel_accuracy != 1.0:
            raise AssertionError(
                f"fault-free job lost pixels on {rows}x{cols}"
            )
        cycles = outcome.job.cycles
        points.append(
            PipelinePoint(
                rows=rows,
                cols=cols,
                shift_in=cycles.shift_in,
                compute=cycles.compute,
                shift_out=cycles.shift_out,
            )
        )
    return points


def detection_table_text(points: Sequence[DetectionPoint]) -> str:
    """Render the detection-latency comparison."""
    from repro.experiments.report import format_table

    rows = [
        (
            f"{p.rows}x{p.cols}",
            p.cells,
            f"{p.external_latency:.1f}",
            f"{p.watchdog_latency:.1f}",
            f"{p.ratio:.1f}x",
        )
        for p in points
    ]
    return (
        "Failure-detection latency (cycles): external survey vs "
        "distributed heartbeat\n"
        + format_table(
            ("grid", "cells", "external survey", "NanoBox watchdog",
             "slowdown"),
            rows,
        )
    )


def pipeline_table_text(points: Sequence[PipelinePoint]) -> str:
    """Render the pipeline-scaling table."""
    from repro.experiments.report import format_table

    rows = [
        (f"{p.rows}x{p.cols}", p.shift_in, p.compute, p.shift_out, p.total)
        for p in points
    ]
    return "64-pixel job cycle budget vs grid size\n" + format_table(
        ("grid", "shift-in", "compute", "shift-out", "total"), rows
    )
