"""Figures 7, 8, 9: percent correct versus injected fault percentage.

The paper's methodology (Section 4): eighteen injected fault percentages,
each data point the average over five trials of each of two workloads
(reverse video and hue shift, 64 eight-bit pixels), a fresh randomly
generated fault mask per computation, the flipped-to-total site ratio held
constant across ALU implementations.

Figure 7 groups the four bit-level techniques with *no* module-level fault
tolerance, Figure 8 with module-level *time* redundancy, Figure 9 with
module-level *space* redundancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.alu.variants import build_alu
from repro.experiments.report import format_series, format_table
from repro.faults.fit import fit_for_fault_fraction
from repro.faults.stats import SampleStats
from repro.perf import ALUSpec, CampaignWorkItem, PolicySpec, run_campaign_items
from repro.workloads.bitmap import Bitmap, gradient

#: The eighteen injected fault percentages of Section 4.
PAPER_FAULT_PERCENTAGES: Tuple[float, ...] = (
    0, 0.05, 0.1, 0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 50, 75,
)

#: ALUs per figure, in the paper's legend order.
FIGURE_VARIANTS: Dict[str, Tuple[str, ...]] = {
    "figure7": ("aluncmos", "alunh", "alunn", "aluns"),
    "figure8": ("alutcmos", "aluth", "alutn", "aluts"),
    "figure9": ("aluscmos", "alush", "alusn", "aluss"),
}

FIGURE_TITLES: Dict[str, str] = {
    "figure7": "No Module-Level Fault Tolerance",
    "figure8": "Time Redundancy Module-Level Fault Tolerance",
    "figure9": "Space Redundancy Module-Level Fault Tolerance",
}


@dataclass(frozen=True)
class SeriesPoint:
    """One plotted point: a variant at one injected fault percentage."""

    variant: str
    fault_percent: float
    percent_correct: float
    stddev: float
    samples: int
    fit_rate: float


@dataclass(frozen=True)
class FigureResult:
    """All series of one figure."""

    name: str
    title: str
    fault_percents: Tuple[float, ...]
    points: Tuple[SeriesPoint, ...]

    def series(self) -> Dict[str, List[float]]:
        """Percent-correct series keyed by variant, in sweep order."""
        out: Dict[str, List[float]] = {}
        for point in self.points:
            out.setdefault(point.variant, []).append(point.percent_correct)
        return out

    def point(self, variant: str, fault_percent: float) -> SeriesPoint:
        """Look up a single plotted point."""
        for p in self.points:
            if p.variant == variant and p.fault_percent == fault_percent:
                return p
        raise KeyError(f"no point for {variant!r} at {fault_percent}%")

    def max_stddev(self) -> float:
        """Largest per-point standard deviation (paper: worst was 24.51)."""
        return max(p.stddev for p in self.points)

    def to_text(self) -> str:
        """Render as the paper's figure, in fixed-width text."""
        body = format_series(
            "fault%", list(self.fault_percents), self.series()
        )
        return f"{self.title}\n{body}"


def _sweep_points(
    variants: Sequence[str],
    fault_percents: Sequence[float],
    bitmap: Optional[Bitmap],
    trials_per_workload: int,
    seed: int,
    jobs: int,
    batched: bool,
    backend: Optional[str] = None,
) -> List[SeriesPoint]:
    """Run every (variant, percent) cell and assemble the series points.

    The whole cross product goes to the executor as one flat item list
    so a parallel run keeps all workers busy across variants; results
    come back in input order, so the points are identical to a nested
    serial loop's.
    """
    items = _sweep_items(
        variants, fault_percents, bitmap, trials_per_workload, seed, batched,
        backend,
    )
    results = run_campaign_items(items, jobs=jobs)
    points = _assemble_points(variants, fault_percents, results)
    assert all(point is not None for point in points)
    return list(points)  # type: ignore[arg-type]


def _sweep_items(
    variants: Sequence[str],
    fault_percents: Sequence[float],
    bitmap: Optional[Bitmap],
    trials_per_workload: int,
    seed: int,
    batched: bool,
    backend: Optional[str] = None,
) -> List[CampaignWorkItem]:
    """The flat (variant x percent) work-item list, in sweep order.

    A default-gradient sweep ships ``bitmap=None``: workers rebuild the
    8x8 gradient locally, so each pickled item is O(spec) -- a few
    hundred bytes -- rather than carrying pixel arrays per cell.
    """
    if trials_per_workload <= 0:
        raise ValueError(
            f"trials_per_workload must be positive, got {trials_per_workload}"
        )
    return [
        CampaignWorkItem(
            alu=ALUSpec.variant(variant),
            policy=PolicySpec.exact(percent / 100.0),
            trials_per_workload=trials_per_workload,
            seed=seed,
            bitmap=bitmap,
            batched=batched,
            backend=backend,
        )
        for variant in variants
        for percent in fault_percents
    ]


def _assemble_points(
    variants: Sequence[str],
    fault_percents: Sequence[float],
    results: Sequence[Optional[Any]],
) -> List[Optional[SeriesPoint]]:
    """Series points from campaign results; ``None`` passes through.

    A missing result (deadline-skipped or dead-lettered chunk in a
    resilient run) yields a ``None`` point in the same slot, so partial
    runs keep every computed cell in its proper place.
    """
    site_counts = {v: build_alu(v).site_count for v in set(variants)}
    points: List[Optional[SeriesPoint]] = []
    index = 0
    for variant in variants:
        for percent in fault_percents:
            result = results[index]
            index += 1
            if result is None:
                points.append(None)
                continue
            stats: SampleStats = result.stats
            points.append(
                SeriesPoint(
                    variant=variant,
                    fault_percent=percent,
                    percent_correct=stats.mean,
                    stddev=stats.stddev,
                    samples=stats.n,
                    fit_rate=fit_for_fault_fraction(
                        percent / 100.0, site_counts[variant]
                    ),
                )
            )
    return points


def sweep_variant(
    variant: str,
    fault_percents: Sequence[float] = PAPER_FAULT_PERCENTAGES,
    bitmap: Optional[Bitmap] = None,
    trials_per_workload: int = 5,
    seed: int = 2004,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> List[SeriesPoint]:
    """Sweep one ALU variant over the injected fault percentages."""
    return _sweep_points(
        (variant,), fault_percents, bitmap, trials_per_workload, seed,
        jobs, batched, backend,
    )


def run_figure(
    name: str,
    fault_percents: Sequence[float] = PAPER_FAULT_PERCENTAGES,
    bitmap: Optional[Bitmap] = None,
    trials_per_workload: int = 5,
    seed: int = 2004,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> FigureResult:
    """Regenerate one of Figures 7, 8, 9 by name."""
    try:
        variants = FIGURE_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; have {sorted(FIGURE_VARIANTS)}"
        ) from None
    points = _sweep_points(
        variants, fault_percents, bitmap, trials_per_workload, seed,
        jobs, batched, backend,
    )
    return FigureResult(
        name=name,
        title=FIGURE_TITLES[name],
        fault_percents=tuple(fault_percents),
        points=tuple(points),
    )


@dataclass(frozen=True)
class ResilientFigureRun:
    """One checkpointed/budgeted figure run.

    ``figure`` is set exactly when the run completed; its text rendering
    is then byte-identical to :func:`run_figure`'s.  ``points`` always
    holds every cell, with ``None`` in slots the deadline or dead-letter
    machinery left uncomputed.  ``outcome`` carries the recovery
    accounting (reused/computed chunks, retries, dead letters ...).
    """

    name: str
    title: str
    fault_percents: Tuple[float, ...]
    points: Tuple[Optional[SeriesPoint], ...]
    outcome: Any  # repro.perf.ResilientOutcome

    @property
    def figure(self) -> Optional[FigureResult]:
        if any(point is None for point in self.points):
            return None
        return FigureResult(
            name=self.name,
            title=self.title,
            fault_percents=self.fault_percents,
            points=tuple(self.points),  # type: ignore[arg-type]
        )


def _sweep_config(
    name: str,
    variants: Sequence[str],
    fault_percents: Sequence[float],
    bitmap: Optional[Bitmap],
    trials_per_workload: int,
    seed: int,
    batched: bool,
) -> Dict[str, Any]:
    """Everything that determines a sweep's results, JSON-safe.

    This is the checkpoint run key's input: two invocations share
    checkpoints exactly when this dictionary is equal.
    """
    bmp = bitmap if bitmap is not None else gradient(8, 8)
    return {
        "experiment": "figure-sweep",
        "figure": name,
        "variants": list(variants),
        "fault_percents": list(fault_percents),
        "trials_per_workload": trials_per_workload,
        "seed": seed,
        "batched": batched,
        "bitmap": {
            "width": bmp.width,
            "height": bmp.height,
            "pixels": bmp.pixels,
        },
    }


def run_figure_resilient(
    name: str,
    runtime,
    fault_percents: Sequence[float] = PAPER_FAULT_PERCENTAGES,
    bitmap: Optional[Bitmap] = None,
    trials_per_workload: int = 5,
    seed: int = 2004,
    jobs: int = 1,
    batched: bool = True,
    backend: Optional[str] = None,
) -> ResilientFigureRun:
    """:func:`run_figure` under the crash-safe campaign runtime.

    ``runtime`` is a :class:`repro.perf.ResilientRuntime`; a completed
    run's ``figure`` renders byte-identically to an uninterrupted
    :func:`run_figure` -- checkpoint reuse never perturbs the numbers.

    ``backend`` is deliberately *not* part of the checkpoint run key:
    every tier produces bit-identical results, so checkpoints written
    by a batched run are valid for a compiled resume and vice versa.
    """
    from repro.perf import resilient_campaign_map

    try:
        variants = FIGURE_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; have {sorted(FIGURE_VARIANTS)}"
        ) from None
    items = _sweep_items(
        variants, fault_percents, bitmap, trials_per_workload, seed, batched,
        backend,
    )
    outcome = resilient_campaign_map(
        items,
        jobs=jobs,
        runtime=runtime,
        config=_sweep_config(
            name, variants, fault_percents, bitmap, trials_per_workload,
            seed, batched,
        ),
    )
    points = _assemble_points(variants, fault_percents, outcome.results)
    return ResilientFigureRun(
        name=name,
        title=FIGURE_TITLES[name],
        fault_percents=tuple(fault_percents),
        points=tuple(points),
        outcome=outcome,
    )


def partial_figure_text(run: ResilientFigureRun) -> str:
    """Render an incomplete figure run: computed cells, '...' for missing.

    Complete runs should use ``run.figure.to_text()`` instead (this
    renderer exists so a deadline-hit run still emits a well-formed
    table for every cell it did compute).
    """
    variants = FIGURE_VARIANTS[run.name]
    by_cell: Dict[Tuple[str, float], Optional[SeriesPoint]] = {}
    index = 0
    for variant in variants:
        for percent in run.fault_percents:
            by_cell[(variant, percent)] = run.points[index]
            index += 1
    rows = []
    for percent in run.fault_percents:
        row: List[str] = [f"{percent:g}"]
        for variant in variants:
            point = by_cell[(variant, percent)]
            row.append("..." if point is None else f"{point.percent_correct:.2f}")
        rows.append(tuple(row))
    body = format_table(("fault%",) + tuple(variants), rows)
    return f"{run.title} [partial]\n{body}"


def figure7(**kwargs) -> FigureResult:
    """Figure 7: bit-level techniques, no module-level redundancy."""
    return run_figure("figure7", **kwargs)


def figure8(**kwargs) -> FigureResult:
    """Figure 8: bit-level techniques under module-level time redundancy."""
    return run_figure("figure8", **kwargs)


def figure9(**kwargs) -> FigureResult:
    """Figure 9: bit-level techniques under module-level space redundancy."""
    return run_figure("figure9", **kwargs)
