"""Area-overhead accounting (abstract / Section 5).

"By triplicating at the bit-level and triplicating again at the
module-level, we incur area overhead on the order of 9x."  Fault sites are
storage bits or gate nodes laid out as a regular nanodevice fabric, so the
site-count ratio against the unprotected lookup-table ALU (``alunn``)
tracks area.  ``aluss`` / ``alunn`` = 5040 / 512 ~ 9.8x -- the paper's
"order of 9x".
"""

from __future__ import annotations

from typing import List, Tuple

from repro.alu.variants import TABLE2_SITE_COUNTS, variant_names, variant_spec
from repro.experiments.report import format_table

#: Overhead baseline: the NanoBox ALU with no redundancy of any form.
BASELINE_VARIANT = "alunn"


def area_rows() -> List[Tuple[str, int, float, str]]:
    """(variant, sites, overhead vs alunn, description) for all variants."""
    baseline = TABLE2_SITE_COUNTS[BASELINE_VARIANT]
    rows = []
    for name in variant_names():
        sites = TABLE2_SITE_COUNTS[name]
        rows.append(
            (name, sites, sites / baseline, variant_spec(name).description)
        )
    return rows


def headline_overhead() -> float:
    """The paper's headline configuration overhead: aluss vs alunn."""
    return TABLE2_SITE_COUNTS["aluss"] / TABLE2_SITE_COUNTS[BASELINE_VARIANT]


def area_table_text() -> str:
    """Render the overhead table."""
    rows = [
        (name, sites, f"{ratio:.2f}x")
        for name, sites, ratio, _desc in area_rows()
    ]
    return (
        f"Area overhead relative to {BASELINE_VARIANT} "
        f"(paper headline: ~9x for aluss)\n"
        + format_table(("ALU", "sites", "overhead"), rows)
    )
