"""Combinational netlist with per-node fault overlay.

A :class:`Netlist` is built gate by gate in topological order (a gate may
only reference signals that already exist), then evaluated as many times as
needed.  Evaluation takes a *fault mask* -- an integer with one bit per gate
node -- and inverts every masked node's output before it feeds downstream
logic, exactly the XOR-based injection of paper Figure 6b.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.logic.gates import Gate, GateType, Signal, SignalKind, evaluate_gate


class Netlist:
    """A flat combinational circuit: inputs, gates, named outputs."""

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._inputs: List[Signal] = []
        self._input_index: Dict[str, int] = {}
        self._gates: List[Gate] = []
        self._outputs: List[Tuple[str, Signal]] = []

    # ------------------------------------------------------------------ build

    def input(self, name: str) -> Signal:
        """Declare a primary input and return its signal handle."""
        if name in self._input_index:
            raise ValueError(f"duplicate input name {name!r}")
        sig = Signal(SignalKind.INPUT, len(self._inputs), name)
        self._input_index[name] = sig.index
        self._inputs.append(sig)
        return sig

    def const(self, value: int) -> Signal:
        """Return a hard-wired constant signal (0 or 1)."""
        if value not in (0, 1):
            raise ValueError(f"constant must be 0 or 1, got {value}")
        return Signal(SignalKind.CONST, value, f"const{value}")

    def add(self, gate_type: GateType, *inputs: Signal, name: str = "") -> Signal:
        """Append a gate; returns the signal of its output node."""
        for sig in inputs:
            self._check_exists(sig)
        index = len(self._gates)
        gate = Gate(gate_type, tuple(inputs), index, name or f"g{index}")
        self._gates.append(gate)
        return Signal(SignalKind.GATE, index, gate.name)

    def set_output(self, name: str, signal: Signal) -> None:
        """Expose ``signal`` as a named circuit output."""
        self._check_exists(signal)
        if any(existing == name for existing, _ in self._outputs):
            raise ValueError(f"duplicate output name {name!r}")
        self._outputs.append((name, signal))

    def _check_exists(self, sig: Signal) -> None:
        if sig.kind is SignalKind.INPUT:
            if sig.index >= len(self._inputs):
                raise ValueError(f"unknown input signal {sig!r}")
        elif sig.kind is SignalKind.GATE:
            if sig.index >= len(self._gates):
                raise ValueError(
                    f"gate signal {sig!r} not yet defined (netlist is built "
                    "in topological order)"
                )

    # -------------------------------------------------------------- inspect

    @property
    def node_count(self) -> int:
        """Number of gate-output nodes == number of fault-injection sites."""
        return len(self._gates)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(sig.name for sig in self._inputs)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._outputs)

    @property
    def outputs(self) -> Tuple[Tuple[str, Signal], ...]:
        """Named outputs as ``(name, signal)`` pairs, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    def gate_histogram(self) -> Dict[str, int]:
        """Return a gate-type usage count, for area bookkeeping."""
        hist: Dict[str, int] = {}
        for gate in self._gates:
            hist[gate.gate_type.value] = hist.get(gate.gate_type.value, 0) + 1
        return hist

    # ------------------------------------------------------------- evaluate

    def evaluate(
        self,
        inputs: Mapping[str, int],
        fault_mask: int = 0,
    ) -> Dict[str, int]:
        """Evaluate the circuit and return ``{output name: bit}``.

        Args:
            inputs: bit value for every declared primary input.
            fault_mask: integer with bit ``g`` set to invert gate node ``g``.

        Raises:
            KeyError: if an input value is missing.
            ValueError: if an input value is not 0/1.
        """
        in_values: List[int] = [0] * len(self._inputs)
        for sig in self._inputs:
            bit = inputs[sig.name]
            if bit not in (0, 1):
                raise ValueError(f"input {sig.name!r} must be 0 or 1, got {bit!r}")
            in_values[sig.index] = bit

        node_values: List[int] = [0] * len(self._gates)

        def resolve(sig: Signal) -> int:
            if sig.kind is SignalKind.GATE:
                return node_values[sig.index]
            if sig.kind is SignalKind.INPUT:
                return in_values[sig.index]
            return sig.index  # CONST

        for gate in self._gates:
            bits = tuple(resolve(sig) for sig in gate.inputs)
            value = evaluate_gate(gate.gate_type, bits)
            if (fault_mask >> gate.index) & 1:
                value ^= 1
            node_values[gate.index] = value

        return {name: resolve(sig) for name, sig in self._outputs}

    def evaluate_bus(
        self,
        inputs: Mapping[str, int],
        bus_prefixes: Sequence[str],
        fault_mask: int = 0,
    ) -> Dict[str, int]:
        """Evaluate, then pack outputs named ``<prefix><i>`` into integers.

        Convenience for datapath circuits: outputs ``out0..out7`` become the
        integer ``out``.  Non-bus outputs are returned unchanged.
        """
        flat = self.evaluate(inputs, fault_mask)
        packed: Dict[str, int] = {}
        consumed = set()
        for prefix in bus_prefixes:
            value = 0
            i = 0
            while f"{prefix}{i}" in flat:
                value |= flat[f"{prefix}{i}"] << i
                consumed.add(f"{prefix}{i}")
                i += 1
            if i == 0:
                raise KeyError(f"no outputs named {prefix!r}0..")
            packed[prefix] = value
        for name, bit in flat.items():
            if name not in consumed:
                packed[name] = bit
        return packed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, inputs={len(self._inputs)}, "
            f"nodes={self.node_count}, outputs={len(self._outputs)})"
        )
