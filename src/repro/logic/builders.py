"""Netlist builders: generic cells plus the paper's CMOS baseline circuits.

The CMOS baseline ALU reproduces the 192 fault-injection nodes of paper
Table 2 (``aluncmos``): 8 bit slices x 24 gate nodes, where each slice holds
14 datapath gates and a 10-gate replicated opcode decoder (per-slice decode
keeps select wires short, in keeping with the paper's nearest-neighbour
signalling constraint).  The CMOS majority voter reproduces the 81-node
module-level voter implied by ``aluscmos`` = 3x192 + 81.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.logic.gates import GateType, Signal
from repro.logic.netlist import Netlist

#: Gate nodes per CMOS ALU bit slice (14 datapath + 10 decode).
CMOS_ALU_NODES_PER_SLICE = 24
#: Gate nodes in the complete 8-bit CMOS ALU (Table 2: ``aluncmos`` = 192).
CMOS_ALU_NODE_COUNT = 8 * CMOS_ALU_NODES_PER_SLICE
#: Gate nodes per voted bit of the CMOS majority voter.
CMOS_VOTER_NODES_PER_BIT = 9
#: Gate nodes in the 9-bit CMOS voter (Table 2: ``aluscmos`` - 3x192 = 81).
CMOS_VOTER_NODE_COUNT = 9 * CMOS_VOTER_NODES_PER_BIT


def build_full_adder(
    net: Netlist, a: Signal, b: Signal, cin: Signal, tag: str
) -> Tuple[Signal, Signal, Dict[str, Signal]]:
    """Append a full adder; returns ``(sum, carry_out, internal signals)``.

    The decomposition (2 XOR, 2 AND, 1 OR = 5 nodes, with ``a XOR b``
    shared) is the one used inside the CMOS ALU slice.
    """
    xor_ab = net.add(GateType.XOR, a, b, name=f"{tag}.xor_ab")
    total = net.add(GateType.XOR, xor_ab, cin, name=f"{tag}.sum")
    and_ab = net.add(GateType.AND, a, b, name=f"{tag}.and_ab")
    and_c = net.add(GateType.AND, xor_ab, cin, name=f"{tag}.and_c")
    cout = net.add(GateType.OR, and_ab, and_c, name=f"{tag}.cout")
    internals = {"xor_ab": xor_ab, "and_ab": and_ab, "and_c": and_c}
    return total, cout, internals


def build_majority3(
    net: Netlist, x: Signal, y: Signal, z: Signal, tag: str, buffered: bool = True
) -> Signal:
    """Append a three-input majority cell.

    With ``buffered=True`` the cell matches the CMOS voter bit exactly:
    three input buffers (nanoscale drive-strength repair), three pairwise
    ANDs, a two-OR merge tree, and an output buffer -- 9 gate nodes.
    """
    if buffered:
        x = net.add(GateType.BUF, x, name=f"{tag}.bx")
        y = net.add(GateType.BUF, y, name=f"{tag}.by")
        z = net.add(GateType.BUF, z, name=f"{tag}.bz")
    and_xy = net.add(GateType.AND, x, y, name=f"{tag}.and_xy")
    and_yz = net.add(GateType.AND, y, z, name=f"{tag}.and_yz")
    and_xz = net.add(GateType.AND, x, z, name=f"{tag}.and_xz")
    or1 = net.add(GateType.OR, and_xy, and_yz, name=f"{tag}.or1")
    maj = net.add(GateType.OR, or1, and_xz, name=f"{tag}.maj")
    if buffered:
        maj = net.add(GateType.BUF, maj, name=f"{tag}.out")
    return maj


def _build_opcode_decoder(
    net: Netlist, op: Tuple[Signal, Signal, Signal], tag: str
) -> Dict[str, Signal]:
    """Append the 10-gate one-hot decoder for the Table 1 opcodes.

    Opcodes: AND=000, OR=001, XOR=010, ADD=111.
    """
    op0, op1, op2 = op
    n0 = net.add(GateType.NOT, op0, name=f"{tag}.n0")
    n1 = net.add(GateType.NOT, op1, name=f"{tag}.n1")
    n2 = net.add(GateType.NOT, op2, name=f"{tag}.n2")
    a01 = net.add(GateType.AND, n2, n1, name=f"{tag}.a01")        # op = 00x
    s_and = net.add(GateType.AND, a01, n0, name=f"{tag}.s_and")   # 000
    s_or = net.add(GateType.AND, a01, op0, name=f"{tag}.s_or")    # 001
    a10 = net.add(GateType.AND, n2, op1, name=f"{tag}.a10")       # op = 01x
    s_xor = net.add(GateType.AND, a10, n0, name=f"{tag}.s_xor")   # 010
    a11 = net.add(GateType.AND, op2, op1, name=f"{tag}.a11")      # op = 11x
    s_add = net.add(GateType.AND, a11, op0, name=f"{tag}.s_add")  # 111
    return {"s_and": s_and, "s_or": s_or, "s_xor": s_xor, "s_add": s_add}


def build_cmos_alu(width: int = 8) -> Netlist:
    """Build the conventional CMOS baseline ALU (paper Table 2 ``aluncmos``).

    Inputs ``a0..a{w-1}``, ``b0..b{w-1}``, ``op0..op2``; outputs
    ``out0..out{w-1}`` and ``carry`` (the slice-``w-1`` carry-out, gated so
    it is only live for ADD).  Every gate output is a fault-injection node;
    for ``width=8`` the total is exactly 192.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    net = Netlist("cmos_alu")
    a_bits = [net.input(f"a{i}") for i in range(width)]
    b_bits = [net.input(f"b{i}") for i in range(width)]
    op = (net.input("op0"), net.input("op1"), net.input("op2"))

    carry: Signal = net.const(0)
    for i in range(width):
        tag = f"s{i}"
        sel = _build_opcode_decoder(net, op, tag)
        a, b = a_bits[i], b_bits[i]
        total, cout, internals = build_full_adder(net, a, b, carry, tag)
        xor_ab = internals["xor_ab"]
        and_ab = internals["and_ab"]
        or_ab = net.add(GateType.OR, a, b, name=f"{tag}.or_ab")
        carry = net.add(GateType.AND, cout, sel["s_add"], name=f"{tag}.cout_g")
        m0 = net.add(GateType.AND, and_ab, sel["s_and"], name=f"{tag}.m0")
        m1 = net.add(GateType.AND, or_ab, sel["s_or"], name=f"{tag}.m1")
        m2 = net.add(GateType.AND, xor_ab, sel["s_xor"], name=f"{tag}.m2")
        m3 = net.add(GateType.AND, total, sel["s_add"], name=f"{tag}.m3")
        or01 = net.add(GateType.OR, m0, m1, name=f"{tag}.or01")
        or23 = net.add(GateType.OR, m2, m3, name=f"{tag}.or23")
        out = net.add(GateType.OR, or01, or23, name=f"{tag}.out")
        net.set_output(f"out{i}", out)

    net.set_output("carry", carry)
    return net


def build_cmos_voter(width: int = 9) -> Netlist:
    """Build the CMOS module-level majority voter (81 nodes for 9 bits).

    Votes three ``width``-bit result bundles bitwise: inputs ``x0..``,
    ``y0..``, ``z0..``; outputs ``v0..v{w-1}``.  The 9-bit bundle is the
    ALU's 8 result bits plus its carry flag.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    net = Netlist("cmos_voter")
    xs = [net.input(f"x{i}") for i in range(width)]
    ys = [net.input(f"y{i}") for i in range(width)]
    zs = [net.input(f"z{i}") for i in range(width)]
    for i in range(width):
        maj = build_majority3(net, xs[i], ys[i], zs[i], tag=f"v{i}", buffered=True)
        net.set_output(f"v{i}", maj)
    return net
