"""Gate-level Hamming check/correct logic.

Paper Section 4: "we do not model faults in the lookup table error
detector or corrector" -- the decoder is assumed perfect even while the
bits it guards are being shredded.  This module removes that idealisation:
it builds the detector/corrector datapath of Figure 1(b) as a real gate
netlist (check-bit regeneration XOR trees, syndrome comparison, and the
output corrector), so the decoder's own nodes become fault-injection
sites.  The ``bench_ablation_faulty_decoder`` study measures what the
idealisation was worth.

The netlist realises the same paper-calibrated semantics as
:class:`repro.lut.coded.CodedLUT`'s ``hamming`` scheme: the output flips
when the syndrome names the addressed position, a check-bit position, or
an invalid position.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.coding.hamming import HammingCode
from repro.logic.gates import GateType, Signal
from repro.logic.netlist import Netlist


def build_xor_tree(net: Netlist, signals: Sequence[Signal], tag: str) -> Signal:
    """Append a balanced XOR reduction; returns the parity signal."""
    if not signals:
        return net.const(0)
    layer = list(signals)
    level = 0
    while len(layer) > 1:
        next_layer: List[Signal] = []
        for i in range(0, len(layer) - 1, 2):
            next_layer.append(
                net.add(GateType.XOR, layer[i], layer[i + 1],
                        name=f"{tag}.x{level}_{i // 2}")
            )
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    return layer[0]


def build_equality(net: Netlist, a: Sequence[Signal], b: Sequence[Signal],
                   tag: str) -> Signal:
    """Append an n-bit equality comparator (XNOR + AND tree)."""
    if len(a) != len(b):
        raise ValueError("equality operands must have equal width")
    bits = [
        net.add(GateType.NOT,
                net.add(GateType.XOR, a[i], b[i], name=f"{tag}.d{i}"),
                name=f"{tag}.e{i}")
        for i in range(len(a))
    ]
    result = bits[0]
    for i, bit in enumerate(bits[1:], start=1):
        result = net.add(GateType.AND, result, bit, name=f"{tag}.a{i}")
    return result


def build_hamming_checker(data_bits: int = 16) -> Netlist:
    """Build the fault-prone decoder for one Hamming block.

    Inputs:
        ``s0..s{n-1}``  -- the (possibly corrupted) stored block bits;
        ``p0..p{r-1}``  -- the addressed position code (stored index + 1);
        ``raw``         -- the addressed stored bit (the storage array's
        read port output).

    Outputs:
        ``syn0..``      -- the recomputed syndrome;
        ``flip``        -- the corrector's flip decision;
        ``out``         -- the delivered function output, ``raw ^ flip``.
    """
    code = HammingCode(data_bits)
    n, r = code.total_bits, code.check_bits
    net = Netlist(f"hamming_checker_{data_bits}")
    stored = [net.input(f"s{i}") for i in range(n)]
    pos = [net.input(f"p{j}") for j in range(r)]
    raw = net.input("raw")

    # Syndrome: one parity tree per check bit over its covered positions
    # (check bit included) -- the "check bit generator" + "error
    # detector" of Figure 1b fused, as a real implementation would.
    syndrome: List[Signal] = []
    for j in range(r):
        covered = [
            stored[i] for i in range(n) if (i + 1) & (1 << j)
        ]
        syn_bit = build_xor_tree(net, covered, tag=f"syn{j}")
        syndrome.append(syn_bit)
        net.set_output(f"syn{j}", syn_bit)

    # syndrome != 0
    any_syn = syndrome[0]
    for j, bit in enumerate(syndrome[1:], start=1):
        any_syn = net.add(GateType.OR, any_syn, bit, name=f"det.or{j}")

    # syndrome == addressed position code
    match_addr = build_equality(net, syndrome, pos, tag="cmp_addr")

    # syndrome names a check-bit position (a one-hot code word).  A
    # 5-bit value is a power of two iff exactly one bit is set: detect
    # via OR of per-bit "this bit set and no higher/lower bit set" --
    # implemented as sum-of-products over the r one-hot patterns.
    one_hot_terms: List[Signal] = []
    for j in range(r):
        term = syndrome[j]
        for k in range(r):
            if k == j:
                continue
            inv = net.add(GateType.NOT, syndrome[k], name=f"oh{j}.n{k}")
            term = net.add(GateType.AND, term, inv, name=f"oh{j}.a{k}")
        one_hot_terms.append(term)
    is_check = one_hot_terms[0]
    for j, term in enumerate(one_hot_terms[1:], start=1):
        is_check = net.add(GateType.OR, is_check, term, name=f"oh.or{j}")

    # syndrome > n (invalid position in the shortened code): MSB-first
    # magnitude comparison against the constant n, tracking "equal so
    # far" through the constant's one-bits.
    gt: Signal = net.const(0)
    eq: Signal = net.const(1)
    for j in reversed(range(r)):
        n_bit = (n >> j) & 1
        if n_bit == 0:
            term = net.add(GateType.AND, eq, syndrome[j], name=f"gt.t{j}")
            gt = net.add(GateType.OR, gt, term, name=f"gt.o{j}")
        else:
            eq = net.add(GateType.AND, eq, syndrome[j], name=f"gt.e{j}")

    # flip = any_syn AND (match_addr OR is_check OR invalid)
    fire = net.add(GateType.OR, match_addr, is_check, name="fire.or1")
    fire = net.add(GateType.OR, fire, gt, name="fire.or2")
    flip = net.add(GateType.AND, any_syn, fire, name="flip")
    net.set_output("flip", flip)

    out = net.add(GateType.XOR, raw, flip, name="out")
    net.set_output("out", out)
    return net
