"""Gate primitives for the CMOS netlist simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Tuple


class GateType(enum.Enum):
    """Supported combinational gate types.

    Arbitrary fan-in is allowed for the symmetric gates; ``NOT`` and ``BUF``
    require exactly one input.
    """

    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    NOT = "not"
    BUF = "buf"


def _eval_and(bits: Tuple[int, ...]) -> int:
    return int(all(bits))


def _eval_or(bits: Tuple[int, ...]) -> int:
    return int(any(bits))


def _eval_xor(bits: Tuple[int, ...]) -> int:
    acc = 0
    for b in bits:
        acc ^= b
    return acc


_EVALUATORS: Dict[GateType, Callable[[Tuple[int, ...]], int]] = {
    GateType.AND: _eval_and,
    GateType.OR: _eval_or,
    GateType.XOR: _eval_xor,
    GateType.NAND: lambda bits: 1 - _eval_and(bits),
    GateType.NOR: lambda bits: 1 - _eval_or(bits),
    GateType.NOT: lambda bits: 1 - bits[0],
    GateType.BUF: lambda bits: bits[0],
}

_UNARY = frozenset({GateType.NOT, GateType.BUF})


def evaluate_gate(gate_type: GateType, bits: Tuple[int, ...]) -> int:
    """Evaluate one gate over already-resolved input bits."""
    return _EVALUATORS[gate_type](bits)


class SignalKind(enum.Enum):
    """Where a signal's value comes from during evaluation."""

    INPUT = "input"    # primary input, supplied by the caller
    GATE = "gate"      # output node of a gate (a fault-injection site)
    CONST = "const"    # hard-wired 0 or 1 (not a fault site)


@dataclass(frozen=True)
class Signal:
    """Handle to a value inside a :class:`~repro.logic.netlist.Netlist`.

    ``index`` is the position within the kind's namespace: input number,
    gate node number, or constant value.
    """

    kind: SignalKind
    index: int
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"{self.kind.value}{self.index}"
        return f"Signal({label})"


@dataclass(frozen=True)
class Gate:
    """One gate instance: a type, ordered input signals, and a debug name.

    The gate's output is netlist node ``index`` -- the paper's fault model
    flips these nodes ("nodes between transistors are flipped via XOR
    gates", Figure 6b).
    """

    gate_type: GateType
    inputs: Tuple[Signal, ...]
    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.gate_type in _UNARY:
            if len(self.inputs) != 1:
                raise ValueError(
                    f"{self.gate_type.value} gate takes exactly one input, "
                    f"got {len(self.inputs)}"
                )
        elif len(self.inputs) < 2:
            raise ValueError(
                f"{self.gate_type.value} gate needs at least two inputs, "
                f"got {len(self.inputs)}"
            )
