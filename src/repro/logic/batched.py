"""Vectorized netlist evaluation over batches of fault words.

The scalar :meth:`~repro.logic.netlist.Netlist.evaluate` walks the gate
list once per instruction, resolving Python ints through dicts; a fault
campaign calls it tens of thousands of times.  :class:`BatchedNetlist`
compiles the same topologically ordered gate list into a flat evaluation
plan, then executes it once per *trial*: every node value is an ``(n,)``
uint8 array over the batch, and the per-node fault overlay is a single
column XOR.  Gate count stays the loop bound, so the Python overhead is
per-gate-per-trial instead of per-gate-per-instruction.

Bit-identical to the scalar evaluator by construction: the gate
functions are the same boolean algebra, applied elementwise.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.logic.gates import GateType, SignalKind
from repro.logic.netlist import Netlist

#: Source operand kinds in the compiled plan.
_SRC_GATE = 0
_SRC_INPUT = 1
_SRC_CONST = 2


class BatchedNetlist:
    """A compiled, batch-evaluating view of one :class:`Netlist`.

    ``evaluate(inputs, fault_bits)`` takes ``(n,)`` uint8 arrays for each
    primary input and the ``(n, node_count)`` 0/1 fault flags (the
    netlist's slice of each draw's mask) and returns ``(n,)`` uint8
    arrays per named output.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._input_names = netlist.input_names
        self._input_index = {name: i for i, name in enumerate(self._input_names)}
        self._node_count = netlist.node_count
        plan: List[Tuple[GateType, Tuple[Tuple[int, int], ...]]] = []
        for gate in netlist.gates:
            sources = tuple(self._compile_signal(sig) for sig in gate.inputs)
            plan.append((gate.gate_type, sources))
        self._plan = plan
        self._outputs = [
            (name, self._compile_signal(sig)) for name, sig in netlist.outputs
        ]

    def _compile_signal(self, sig) -> Tuple[int, int]:
        if sig.kind is SignalKind.GATE:
            return (_SRC_GATE, sig.index)
        if sig.kind is SignalKind.INPUT:
            return (_SRC_INPUT, sig.index)
        return (_SRC_CONST, sig.index)

    @property
    def node_count(self) -> int:
        return self._node_count

    @property
    def input_names(self) -> Tuple[str, ...]:
        return self._input_names

    def evaluate(
        self,
        inputs: Mapping[str, np.ndarray],
        fault_bits: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Evaluate the whole batch; returns ``{output name: (n,) bits}``."""
        in_values: List[np.ndarray] = [None] * len(self._input_names)  # type: ignore[list-item]
        for name, index in self._input_index.items():
            in_values[index] = inputs[name]
        n = fault_bits.shape[0]
        ones = np.ones(n, dtype=np.uint8)

        nodes: List[np.ndarray] = [None] * self._node_count  # type: ignore[list-item]

        def resolve(source: Tuple[int, int]) -> np.ndarray:
            kind, index = source
            if kind == _SRC_GATE:
                return nodes[index]
            if kind == _SRC_INPUT:
                return in_values[index]
            return ones * index if index else np.zeros(n, dtype=np.uint8)

        for node_index, (gate_type, sources) in enumerate(self._plan):
            first = resolve(sources[0])
            if gate_type is GateType.NOT:
                value = first ^ 1
            elif gate_type is GateType.BUF:
                # The trailing fault XOR below always allocates, so the
                # buffered value can alias its source safely.
                value = first
            else:
                value = first
                if gate_type in (GateType.AND, GateType.NAND):
                    for source in sources[1:]:
                        value = value & resolve(source)
                elif gate_type in (GateType.OR, GateType.NOR):
                    for source in sources[1:]:
                        value = value | resolve(source)
                else:  # XOR
                    for source in sources[1:]:
                        value = value ^ resolve(source)
                if gate_type in (GateType.NAND, GateType.NOR):
                    value = value ^ 1
            nodes[node_index] = value ^ fault_bits[:, node_index]

        return {name: resolve(source) for name, source in self._outputs}

    def evaluate_bus(
        self,
        inputs: Mapping[str, np.ndarray],
        bus_prefixes: Sequence[str],
        fault_bits: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Batched mirror of :meth:`Netlist.evaluate_bus`: pack ``<p><i>``
        output bits into int64 value arrays, pass the rest through."""
        flat = self.evaluate(inputs, fault_bits)
        packed: Dict[str, np.ndarray] = {}
        consumed = set()
        for prefix in bus_prefixes:
            value = None
            i = 0
            while f"{prefix}{i}" in flat:
                bit = flat[f"{prefix}{i}"].astype(np.int64) << i
                value = bit if value is None else value | bit
                consumed.add(f"{prefix}{i}")
                i += 1
            if value is None:
                raise KeyError(f"no outputs named {prefix!r}0..")
            packed[prefix] = value
        for name, bits in flat.items():
            if name not in consumed:
                packed[name] = bits.astype(np.int64)
        return packed
