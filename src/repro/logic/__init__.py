"""Gate-level logic substrate.

The paper's baseline ALUs (``aluncmos`` / ``alutcmos`` / ``aluscmos``) are
conventional CMOS designs: logic gates rather than lookup tables, with fault
injection on the "nodes between transistors" (Figure 6b).  This package
provides a small netlist simulator with per-node fault overlay, plus the
builders that construct the exact CMOS ALU and CMOS majority-voter netlists
whose node counts reproduce Table 2 (192 nodes per ALU, 81 per voter).
"""

from repro.logic.gates import Gate, GateType, Signal, SignalKind
from repro.logic.netlist import Netlist
from repro.logic.batched import BatchedNetlist
from repro.logic.builders import (
    build_cmos_alu,
    build_cmos_voter,
    build_full_adder,
    build_majority3,
)

__all__ = [
    "BatchedNetlist",
    "Gate",
    "GateType",
    "Netlist",
    "Signal",
    "SignalKind",
    "build_cmos_alu",
    "build_cmos_voter",
    "build_full_adder",
    "build_majority3",
]
