"""Image-processing workloads (paper Section 4).

The NanoBox concept demonstration targets data-parallel, streaming image
processing: "We model a single processor cell and test the cell with the
computations needed to reverse the colors of a bitmap and to perform hue
shifts of a bitmap."  The test bitmap holds 64 eight-bit pixels; reverse
video XORs every pixel with ``11111111`` and the hue shift adds ``00001100``.

This package provides the bitmap container, deterministic bitmap
generators, the instruction compilers for the paper's two workloads plus
additional streaming operations, and simple portable-graymap I/O.
"""

from repro.workloads.bitmap import Bitmap, checkerboard, gradient, random_bitmap
from repro.workloads.imaging import (
    HUE_SHIFT_CONSTANT,
    REVERSE_VIDEO_MASK,
    ImageWorkload,
    brightness_boost,
    hue_shift,
    paper_workloads,
    reverse_video,
    threshold_mask,
)
from repro.workloads.streams import (
    StreamWorkload,
    checksum_stream,
    random_alu_stream,
    sliding_xor_stream,
)
from repro.workloads.dataflow import (
    DataflowOutcome,
    DataflowProgram,
    GridDataflowExecutor,
    Ref,
    checksum_tree_program,
    fir_filter_program,
)

__all__ = [
    "Bitmap",
    "DataflowOutcome",
    "DataflowProgram",
    "GridDataflowExecutor",
    "HUE_SHIFT_CONSTANT",
    "ImageWorkload",
    "REVERSE_VIDEO_MASK",
    "Ref",
    "StreamWorkload",
    "checksum_tree_program",
    "fir_filter_program",
    "brightness_boost",
    "checkerboard",
    "checksum_stream",
    "gradient",
    "hue_shift",
    "paper_workloads",
    "random_alu_stream",
    "random_bitmap",
    "reverse_video",
    "sliding_xor_stream",
    "threshold_mask",
]
