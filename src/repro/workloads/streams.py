"""Non-image streaming workloads.

The paper's future work calls for "a range of application-level workloads"
beyond the two image kernels.  These generators produce additional
data-parallel instruction streams over the same four-instruction ISA so
sweeps can check that the fault-tolerance ranking is not an artefact of the
image workloads' operand patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.alu.base import Opcode
from repro.alu.reference import reference_compute

#: One instruction: (opcode, operand1, operand2, expected result).
Instruction = Tuple[int, int, int, int]


@dataclass(frozen=True)
class StreamWorkload:
    """A named, precompiled instruction stream."""

    name: str
    instructions: Tuple[Instruction, ...]

    def __len__(self) -> int:
        return len(self.instructions)


def _with_expected(triples: List[Tuple[int, int, int]]) -> Tuple[Instruction, ...]:
    return tuple(
        (op, a, b, reference_compute(op, a, b).value) for op, a, b in triples
    )


def random_alu_stream(length: int = 64, seed: int = 0) -> StreamWorkload:
    """Uniformly random opcodes and operands -- the least structured mix."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    rng = np.random.default_rng(seed)
    opcodes = [int(m) for m in Opcode]
    triples = [
        (
            opcodes[int(rng.integers(len(opcodes)))],
            int(rng.integers(256)),
            int(rng.integers(256)),
        )
        for _ in range(length)
    ]
    return StreamWorkload("random_alu", _with_expected(triples))


def checksum_stream(data: bytes = b"", length: int = 64) -> StreamWorkload:
    """Additive checksum over a byte stream: ``acc = acc + byte`` per step.

    The dependence chain is *logical* only -- each instruction carries its
    own operands, as NanoBox memory words do -- but operand values follow
    the running checksum so errors would compound in a real deployment.
    """
    if not data:
        data = bytes((i * 29 + 7) & 0xFF for i in range(length))
    acc = 0
    triples = []
    for byte in data:
        triples.append((int(Opcode.ADD), acc, byte))
        acc = (acc + byte) & 0xFF
    return StreamWorkload("checksum", _with_expected(triples))


def sliding_xor_stream(data: bytes = b"", length: int = 64) -> StreamWorkload:
    """Pairwise XOR of neighbouring bytes -- an edge-detector-like kernel."""
    if not data:
        data = bytes((i * i + 3 * i) & 0xFF for i in range(length + 1))
    triples = [
        (int(Opcode.XOR), data[i], data[i + 1]) for i in range(len(data) - 1)
    ]
    return StreamWorkload("sliding_xor", _with_expected(triples))
