"""Image-processing workload compilers.

An :class:`ImageWorkload` turns a bitmap into the per-pixel ALU instruction
stream a NanoBox processor cell executes, and knows the expected output
bitmap.  The paper's two workloads:

* *reverse video* -- XOR each pixel with ``11111111``;
* *hue shift* -- ADD the constant ``00001100`` to each pixel.

Both produce one instruction per pixel, 64 instructions for the paper's
64-pixel bitmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.alu.base import Opcode
from repro.alu.reference import reference_compute
from repro.workloads.bitmap import Bitmap

#: Reverse video XOR mask (paper Section 4: "11111111").
REVERSE_VIDEO_MASK = 0xFF

#: Hue shift ADD constant (paper Section 4: "00001100").
HUE_SHIFT_CONSTANT = 0x0C

#: One compiled instruction: (opcode, operand1, operand2, expected result).
Instruction = Tuple[int, int, int, int]


@dataclass(frozen=True)
class ImageWorkload:
    """A named per-pixel ALU operation over a bitmap.

    Attributes:
        name: workload label used in reports.
        opcode: Table 1 opcode applied to every pixel.
        operand: the constant second operand.
    """

    name: str
    opcode: Opcode
    operand: int

    def __post_init__(self) -> None:
        if not 0 <= self.operand <= 0xFF:
            raise ValueError(f"operand {self.operand} out of 8-bit range")

    def compile(self, bitmap: Bitmap) -> List[Instruction]:
        """Compile to one ``(op, pixel, operand, expected)`` per pixel.

        The instruction index is the pixel ID the control processor uses
        to reassemble the image.
        """
        instructions: List[Instruction] = []
        for pixel in bitmap.pixel_stream():
            expected = reference_compute(int(self.opcode), pixel, self.operand).value
            instructions.append((int(self.opcode), pixel, self.operand, expected))
        return instructions

    def apply(self, bitmap: Bitmap) -> Bitmap:
        """Return the expected (fault-free) output bitmap."""
        return bitmap.map_pixels(
            lambda p: reference_compute(int(self.opcode), p, self.operand).value
        )


def reverse_video() -> ImageWorkload:
    """Paper workload 1: reverse the video of a bitmap (XOR ``0xFF``)."""
    return ImageWorkload("reverse_video", Opcode.XOR, REVERSE_VIDEO_MASK)


def hue_shift(constant: int = HUE_SHIFT_CONSTANT) -> ImageWorkload:
    """Paper workload 2: shift the hue of a bitmap (ADD ``0x0C``)."""
    return ImageWorkload("hue_shift", Opcode.ADD, constant)


def brightness_boost(amount: int = 0x20) -> ImageWorkload:
    """Extension workload: saturating-free brightness add (wraps at 256)."""
    return ImageWorkload("brightness_boost", Opcode.ADD, amount)


def threshold_mask(mask: int = 0x80) -> ImageWorkload:
    """Extension workload: AND with a bit mask (keeps the MSB plane)."""
    return ImageWorkload("threshold_mask", Opcode.AND, mask)


def highlight_overlay(mask: int = 0x0F) -> ImageWorkload:
    """Extension workload: OR with a constant (lifts dark pixels)."""
    return ImageWorkload("highlight_overlay", Opcode.OR, mask)


def paper_workloads(bitmap: Bitmap) -> Dict[str, List[Instruction]]:
    """Compile the paper's two workloads over ``bitmap``.

    This is the instruction mix behind every plotted point of Figures
    7-9: five trials of each of these two streams.
    """
    return {
        "reverse_video": reverse_video().compile(bitmap),
        "hue_shift": hue_shift().compile(bitmap),
    }
