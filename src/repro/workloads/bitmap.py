"""Bitmap container and generators.

The paper's test workload is a bitmap of 64 eight-bit pixels, which the
control processor breaks into processor-cell-sized pieces (the unique
instruction ID doubles as a pixel ID) and reassembles after computation.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

#: The paper's concept-demonstration workload size.
PAPER_PIXEL_COUNT = 64

_PIXEL_MAX = 0xFF


class Bitmap:
    """A small grayscale image: ``height x width`` eight-bit pixels.

    Pixels are stored row-major; :meth:`pixel_stream` yields them in the
    order the control processor packetises them (pixel ID order).
    """

    def __init__(self, width: int, height: int, pixels: Sequence[int]) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"bitmap dimensions must be positive, got {width}x{height}")
        expected = width * height
        if len(pixels) != expected:
            raise ValueError(
                f"expected {expected} pixels for {width}x{height}, got {len(pixels)}"
            )
        for i, p in enumerate(pixels):
            if not 0 <= p <= _PIXEL_MAX:
                raise ValueError(f"pixel {i} value {p!r} out of 8-bit range")
        self._width = width
        self._height = height
        self._pixels: List[int] = list(pixels)

    # ------------------------------------------------------------ accessors

    @property
    def width(self) -> int:
        return self._width

    @property
    def height(self) -> int:
        return self._height

    @property
    def pixel_count(self) -> int:
        return self._width * self._height

    @property
    def pixels(self) -> List[int]:
        """A copy of the pixel values, row-major."""
        return list(self._pixels)

    def get(self, x: int, y: int) -> int:
        """Pixel at column ``x``, row ``y``."""
        self._check_coords(x, y)
        return self._pixels[y * self._width + x]

    def _check_coords(self, x: int, y: int) -> None:
        if not (0 <= x < self._width and 0 <= y < self._height):
            raise IndexError(
                f"({x}, {y}) outside {self._width}x{self._height} bitmap"
            )

    def pixel_stream(self) -> Iterator[int]:
        """Yield pixels in packetisation (pixel ID) order."""
        return iter(self._pixels)

    # ----------------------------------------------------------- transforms

    def map_pixels(self, fn) -> "Bitmap":
        """Return a new bitmap with ``fn`` applied to every pixel."""
        return Bitmap(
            self._width, self._height, [fn(p) & _PIXEL_MAX for p in self._pixels]
        )

    def with_pixels(self, pixels: Sequence[int]) -> "Bitmap":
        """Return a same-shape bitmap holding ``pixels``."""
        return Bitmap(self._width, self._height, pixels)

    def difference_count(self, other: "Bitmap") -> int:
        """Number of pixel positions at which two bitmaps differ."""
        if (self._width, self._height) != (other._width, other._height):
            raise ValueError("bitmaps must have identical shape")
        return sum(a != b for a, b in zip(self._pixels, other._pixels))

    # ------------------------------------------------------------------ I/O

    def to_pgm(self) -> str:
        """Serialise as an ASCII portable graymap (P2)."""
        rows = []
        for y in range(self._height):
            row = self._pixels[y * self._width : (y + 1) * self._width]
            rows.append(" ".join(str(p) for p in row))
        body = "\n".join(rows)
        return f"P2\n{self._width} {self._height}\n{_PIXEL_MAX}\n{body}\n"

    @classmethod
    def from_pgm(cls, text: str) -> "Bitmap":
        """Parse an ASCII portable graymap (P2), ignoring ``#`` comments."""
        tokens: List[str] = []
        for line in text.splitlines():
            line = line.split("#", 1)[0]
            tokens.extend(line.split())
        if not tokens or tokens[0] != "P2":
            raise ValueError("not an ASCII PGM (missing P2 magic)")
        if len(tokens) < 4:
            raise ValueError("truncated PGM header")
        width, height, maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
        if maxval <= 0 or maxval > _PIXEL_MAX:
            raise ValueError(f"unsupported maxval {maxval}")
        values = [int(t) for t in tokens[4:]]
        if maxval != _PIXEL_MAX:
            values = [v * _PIXEL_MAX // maxval for v in values]
        return cls(width, height, values)

    # ------------------------------------------------------------- dunders

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return (
            self._width == other._width
            and self._height == other._height
            and self._pixels == other._pixels
        )

    def __hash__(self) -> int:
        return hash((self._width, self._height, tuple(self._pixels)))

    def __len__(self) -> int:
        return self.pixel_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmap({self._width}x{self._height})"


def gradient(width: int = 8, height: int = 8) -> Bitmap:
    """Deterministic diagonal gradient -- the default 64-pixel workload."""
    pixels = [
        ((x * 255 // max(width - 1, 1)) + (y * 255 // max(height - 1, 1))) // 2
        for y in range(height)
        for x in range(width)
    ]
    return Bitmap(width, height, pixels)


def checkerboard(width: int = 8, height: int = 8, low: int = 0, high: int = 255) -> Bitmap:
    """Two-tone checkerboard, maximally sensitive to bit-flip errors."""
    for name, v in (("low", low), ("high", high)):
        if not 0 <= v <= _PIXEL_MAX:
            raise ValueError(f"{name} value {v} out of 8-bit range")
    pixels = [
        high if (x + y) % 2 else low for y in range(height) for x in range(width)
    ]
    return Bitmap(width, height, pixels)


def random_bitmap(width: int = 8, height: int = 8, seed: int = 0) -> Bitmap:
    """Uniform random pixels from a seeded generator."""
    rng = np.random.default_rng(seed)
    pixels = [int(v) for v in rng.integers(0, 256, size=width * height)]
    return Bitmap(width, height, pixels)
