"""Non-streaming (dependent) workloads (paper Section 7).

"In this way, we can evaluate how the NanoBox Processor Grid may be
adapted for non-streaming workloads."  The streaming image kernels are
embarrassingly parallel -- every instruction's operands are known up
front.  A :class:`DataflowProgram` instead forms a DAG: an instruction's
operands may be *references to other instructions' results*, so the
control processor must execute the program in dependency waves, feeding
each wave's results back as the next wave's operands (the NanoBox memory
word carries only literal operands, so dependency resolution is the
CMOS host's job -- consistent with the paper's co-processor split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.alu.base import Opcode
from repro.alu.reference import reference_compute


@dataclass(frozen=True)
class Ref:
    """Reference to another dataflow node's 8-bit result."""

    node: int


#: A literal 8-bit operand or a reference to a prior node's result.
Operand = Union[int, Ref]


@dataclass(frozen=True)
class Node:
    """One dataflow instruction."""

    opcode: Opcode
    a: Operand
    b: Operand

    def dependencies(self) -> Tuple[int, ...]:
        deps = []
        for operand in (self.a, self.b):
            if isinstance(operand, Ref):
                deps.append(operand.node)
        return tuple(deps)


class DataflowProgram:
    """A DAG of Table 1 instructions executed in dependency waves."""

    def __init__(self) -> None:
        self._nodes: List[Node] = []

    # ------------------------------------------------------------ building

    def add(self, opcode: Opcode, a: Operand, b: Operand) -> Ref:
        """Append a node; returns a reference to its future result."""
        for operand in (a, b):
            if isinstance(operand, Ref):
                if not 0 <= operand.node < len(self._nodes):
                    raise ValueError(
                        f"reference to undefined node {operand.node}"
                    )
            elif not 0 <= operand <= 0xFF:
                raise ValueError(f"literal operand {operand} out of 8-bit range")
        self._nodes.append(Node(opcode, a, b))
        return Ref(len(self._nodes) - 1)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes)

    # ------------------------------------------------------------- analysis

    def waves(self) -> List[List[int]]:
        """Partition nodes into dependency levels (wave i depends only on
        waves < i).  Because ``add`` only allows backward references the
        graph is acyclic by construction."""
        level: Dict[int, int] = {}
        for index, node in enumerate(self._nodes):
            deps = node.dependencies()
            level[index] = (
                0 if not deps else 1 + max(level[d] for d in deps)
            )
        result: List[List[int]] = [[] for _ in range(max(level.values(), default=-1) + 1)]
        for index, lvl in level.items():
            result[lvl].append(index)
        return result

    @property
    def depth(self) -> int:
        """Number of dependency waves (the critical path length)."""
        return len(self.waves())

    # ------------------------------------------------------------ reference

    def reference_results(self) -> Dict[int, int]:
        """Fault-free results of every node."""
        values: Dict[int, int] = {}
        for index, node in enumerate(self._nodes):
            a = values[node.a.node] if isinstance(node.a, Ref) else node.a
            b = values[node.b.node] if isinstance(node.b, Ref) else node.b
            values[index] = reference_compute(int(node.opcode), a, b).value
        return values


@dataclass(frozen=True)
class DataflowOutcome:
    """Result of running a program through an executor."""

    results: Dict[int, int]
    waves_executed: int
    missing: Tuple[int, ...]

    @property
    def complete(self) -> bool:
        return not self.missing

    def accuracy_against(self, expected: Dict[int, int]) -> float:
        if not expected:
            return 1.0
        good = sum(
            1 for node, value in expected.items()
            if self.results.get(node) == value
        )
        return good / len(expected)


class GridDataflowExecutor:
    """Executes dataflow programs on a NanoBox grid, wave by wave.

    Each wave becomes one shift-in/compute/shift-out job; the control
    processor substitutes resolved results into the next wave's operand
    fields.  A node whose dependency went missing (dead cells past the
    retry budget) is skipped and reported in ``missing`` along with its
    transitive dependents.
    """

    def __init__(self, simulator) -> None:
        self._simulator = simulator

    def run(self, program: DataflowProgram, max_rounds: int = 3) -> DataflowOutcome:
        results: Dict[int, int] = {}
        missing: List[int] = []
        waves = program.waves()
        for wave in waves:
            instructions = []
            skipped: List[int] = []
            for index in wave:
                node = program.nodes[index]
                operands = []
                resolvable = True
                for operand in (node.a, node.b):
                    if isinstance(operand, Ref):
                        if operand.node in results:
                            operands.append(results[operand.node])
                        else:
                            resolvable = False
                            break
                    else:
                        operands.append(operand)
                if not resolvable:
                    skipped.append(index)
                    continue
                instructions.append(
                    (index, int(node.opcode), operands[0], operands[1])
                )
            missing.extend(skipped)
            if not instructions:
                continue
            job = self._simulator.run_instructions(
                instructions, max_rounds=max_rounds
            )
            results.update(job.results)
            missing.extend(
                iid for iid, *_ in instructions if iid not in job.results
            )
        return DataflowOutcome(
            results=results,
            waves_executed=len(waves),
            missing=tuple(sorted(missing)),
        )


def fir_filter_program(
    samples: Sequence[int], taps: Sequence[int] = (0x03, 0x05, 0x02)
) -> DataflowProgram:
    """A small multiply-free FIR-like filter as a dataflow program.

    Each output accumulates ANDed tap/sample pairs through a chain of
    ADDs -- a genuinely dependent computation (depth = number of taps),
    unlike the single-wave image kernels.
    """
    program = DataflowProgram()
    for start in range(len(samples) - len(taps) + 1):
        accumulator: Optional[Ref] = None
        for k, tap in enumerate(taps):
            term = program.add(Opcode.AND, samples[start + k], tap)
            if accumulator is None:
                accumulator = term
            else:
                accumulator = program.add(Opcode.ADD, accumulator, term)
    return program


def checksum_tree_program(data: Sequence[int]) -> DataflowProgram:
    """Balanced XOR-reduction tree over a data block (depth ~ log2 n)."""
    if not data:
        raise ValueError("checksum tree needs at least one byte")
    program = DataflowProgram()
    frontier: List[Operand] = list(data)
    while len(frontier) > 1:
        next_frontier: List[Operand] = []
        for i in range(0, len(frontier) - 1, 2):
            next_frontier.append(
                program.add(Opcode.XOR, frontier[i], frontier[i + 1])
            )
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    if not len(program):
        # Single byte: emit one no-op XOR with zero so there is a result.
        program.add(Opcode.XOR, frontier[0], 0)
    return program
