"""repro: the Recursive NanoBox Processor Grid, in Python.

A full reproduction of *"The Recursive NanoBox Processor Grid: A Reliable
System Architecture for Unreliable Nanotechnology Devices"* (KleinOsowski
et al., DSN 2004): error-coded lookup-table logic, the twelve Table 2 ALU
variants, module-level time/space redundancy with fault-prone voters, the
processor cell (memory, ALU control, router, heartbeat), the full
processor grid with its control processor and watchdog failover, the
Monte Carlo fault-injection methodology, and the harnesses that regenerate
every table and figure of the paper's evaluation.

Quickstart::

    from repro import build_alu, FaultCampaign, ExactFractionMask
    from repro.workloads import gradient, paper_workloads

    alu = build_alu("aluss")                     # TMR LUTs x space redundancy
    campaign = FaultCampaign(alu, ExactFractionMask(0.03), seed=0)
    result = campaign.run_workload_suite(paper_workloads(gradient()), 5)
    print(f"{result.percent_correct:.1f}% correct at 3% injected faults")
"""

from repro.alu import (
    ALUResult,
    CMOSALU,
    FaultableUnit,
    NanoBoxALU,
    Opcode,
    ReferenceALU,
    SimplexALU,
    SpaceRedundantALU,
    TABLE2_SITE_COUNTS,
    TimeRedundantALU,
    build_alu,
    reference_compute,
    variant_names,
    variant_spec,
)
from repro.coding import HammingCode, IdentityCode, ParityCode, RepetitionCode
from repro.core import describe_unit, render_tree, ErrorLedger
from repro.faults import (
    BernoulliMask,
    ExactFractionMask,
    FaultCampaign,
    FixedCountMask,
    SiteSpace,
    fit_for_fault_fraction,
    fit_for_faults_per_cycle,
)
from repro.grid import ControlProcessor, GridSimulator, NanoBoxGrid, Watchdog
from repro.lut import CodedLUT, TruthTable
from repro.obs import Observer, get_observer, observing, report_metrics
from repro.workloads import Bitmap, hue_shift, paper_workloads, reverse_video

__version__ = "1.0.0"

__all__ = [
    "ALUResult",
    "BernoulliMask",
    "Bitmap",
    "CMOSALU",
    "CodedLUT",
    "ControlProcessor",
    "ErrorLedger",
    "ExactFractionMask",
    "FaultCampaign",
    "FaultableUnit",
    "FixedCountMask",
    "GridSimulator",
    "HammingCode",
    "IdentityCode",
    "NanoBoxALU",
    "NanoBoxGrid",
    "Observer",
    "Opcode",
    "ParityCode",
    "ReferenceALU",
    "RepetitionCode",
    "SimplexALU",
    "SiteSpace",
    "SpaceRedundantALU",
    "TABLE2_SITE_COUNTS",
    "TimeRedundantALU",
    "TruthTable",
    "Watchdog",
    "build_alu",
    "describe_unit",
    "fit_for_fault_fraction",
    "fit_for_faults_per_cycle",
    "get_observer",
    "hue_shift",
    "observing",
    "paper_workloads",
    "reference_compute",
    "render_tree",
    "report_metrics",
    "reverse_video",
    "variant_names",
    "variant_spec",
    "__version__",
]
