"""Closed-form error-probability models under independent bit flips.

All functions take the per-site flip probability ``p`` (per computation)
and return exact probabilities, assuming every fault site flips
independently -- the :class:`~repro.faults.mask.BernoulliMask` regime.
The paper's exact-fraction injection converges to the same statistics for
the large site counts involved.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.alu.base import Opcode
from repro.coding.hamming import HammingCode


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be within [0, 1], got {p}")


def majority_error_prob(p_each: float, copies: int = 3) -> float:
    """Probability a ``copies``-way majority over i.i.d. inputs is wrong.

    Each input is independently wrong with probability ``p_each``; the
    vote fails when more than half the inputs are wrong.  This is the
    classic TMR expression ``3p^2 - 2p^3`` for three copies.
    """
    _check_probability(p_each)
    if copies < 1 or copies % 2 == 0:
        raise ValueError(f"copies must be a positive odd number, got {copies}")
    need = copies // 2 + 1
    return sum(
        math.comb(copies, k) * p_each**k * (1 - p_each) ** (copies - k)
        for k in range(need, copies + 1)
    )


def nocode_lut_read_error_prob(p: float) -> float:
    """Per-read error of an uncoded LUT: only the addressed bit matters."""
    _check_probability(p)
    return p


def replicated_lut_read_error_prob(p: float, copies: int = 3) -> float:
    """Per-read error of a replicated-string LUT (majority of the
    addressed bit's copies)."""
    return majority_error_prob(p, copies)


def hamming_lut_read_error_prob(
    p: float, data_bits: int = 16, payload_index: int = 0
) -> float:
    """Per-read error of the paper-calibrated Hamming LUT block.

    Exact dynamic program over the block's stored bits.  The decoder
    delivers ``raw ^ flip`` where ``raw`` is the addressed stored bit and
    ``flip`` fires when the syndrome names the addressed position, a
    check-bit position, or an invalid position (see
    :class:`repro.lut.coded.CodedLUT`).  The read errs when the delivered
    bit differs from the fault-free bit, i.e. when
    ``addressed_flipped XOR flip_fired`` is true.

    The DP tracks the joint distribution of (syndrome, addressed-bit
    flipped) while each stored position independently flips with
    probability ``p``; syndromes XOR-accumulate position codes.
    """
    _check_probability(p)
    code = HammingCode(data_bits)
    n = code.total_bits
    addressed_pos = code.data_positions[payload_index]  # stored index
    n_syndromes = 1
    while n_syndromes <= n:
        n_syndromes <<= 1

    # state[(syndrome, addressed_flipped)] -> probability
    state: Dict[Tuple[int, int], float] = {(0, 0): 1.0}
    for stored_index in range(n):
        position_code = stored_index + 1
        next_state: Dict[Tuple[int, int], float] = {}
        for (syndrome, flipped), prob in state.items():
            # Bit survives.
            key = (syndrome, flipped)
            next_state[key] = next_state.get(key, 0.0) + prob * (1 - p)
            # Bit flips: syndrome accumulates its position code.
            new_flipped = flipped ^ (1 if stored_index == addressed_pos else 0)
            key = (syndrome ^ position_code, new_flipped)
            next_state[key] = next_state.get(key, 0.0) + prob * p
        state = next_state

    error = 0.0
    for (syndrome, flipped), prob in state.items():
        if syndrome == 0:
            fired = 0
        elif syndrome - 1 == addressed_pos:
            fired = 1
        elif syndrome > n or (syndrome & (syndrome - 1)) == 0:
            fired = 1  # check-bit or invalid syndrome: false positive
        else:
            fired = 0  # corrects some other data bit; output untouched
        if flipped ^ fired:
            error += prob
    return error


def per_read_error_prob(scheme: str, p: float) -> float:
    """Dispatch per-read error probability by LUT coding scheme."""
    if scheme == "none":
        return nocode_lut_read_error_prob(p)
    if scheme == "tmr":
        return replicated_lut_read_error_prob(p, 3)
    if scheme == "5mr":
        return replicated_lut_read_error_prob(p, 5)
    if scheme == "7mr":
        return replicated_lut_read_error_prob(p, 7)
    if scheme == "hamming":
        return hamming_lut_read_error_prob(p)
    raise ValueError(f"no closed-form model for scheme {scheme!r}")


def instruction_error_prob(q: float, opcode: Opcode, width: int = 8) -> float:
    """Approximate probability one instruction's 8-bit result is wrong.

    ``q`` is the per-LUT-read error probability.  Logical opcodes read the
    ``width`` result LUTs (carry-LUT upsets redirect the next slice's
    address, but logical truth tables do not depend on the carry input, so
    to first order only result reads matter); ADD reads both the result
    and carry LUT of every slice, and any wrong read corrupts the ripple
    chain with high probability.  Exact to first order in ``q``; the
    property tests allow the corresponding tolerance.
    """
    _check_probability(q)
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    reads = 2 * width if opcode is Opcode.ADD else width
    return 1.0 - (1.0 - q) ** reads


def voted_bundle_error_prob(q_core: float, q_voter_read: float,
                            width: int = 9) -> float:
    """Probability a module-voted 9-bit bundle is wrong.

    Upper-level model: three independent core results, each wrong with
    probability ``q_core``; the voter reads ``width`` LUTs, each
    independently misreading with probability ``q_voter_read``.  Treats a
    wrong core result as wrong in at least one voted bit (conservative for
    the paper's workloads, where single-bit result errors dominate).
    """
    _check_probability(q_core)
    _check_probability(q_voter_read)
    vote_fails = majority_error_prob(q_core, 3)
    voter_ok = (1.0 - q_voter_read) ** width
    return 1.0 - (1.0 - vote_fails) * voter_ok


def predicted_percent_correct(
    scheme: str, p: float, workload_mix: Dict[Opcode, float] = None
) -> float:
    """Predicted percent-correct for a no-module-redundancy NanoBox ALU.

    ``workload_mix`` maps opcodes to their fraction of the instruction
    stream; the default is the paper's half reverse-video (XOR), half
    hue-shift (ADD) mix.
    """
    if workload_mix is None:
        workload_mix = {Opcode.XOR: 0.5, Opcode.ADD: 0.5}
    total = sum(workload_mix.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"workload mix fractions must sum to 1, got {total}")
    q = per_read_error_prob(scheme, p)
    correct = sum(
        fraction * (1.0 - instruction_error_prob(q, opcode))
        for opcode, fraction in workload_mix.items()
    )
    return 100.0 * correct
