"""Design-space helpers built on the closed-form reliability models.

Answers the questions a NanoBox adopter would ask next:

* *What injected-fault rate (and hence raw FIT rate) can a configuration
  tolerate while staying above a target accuracy?* --
  :func:`fault_budget` / :func:`fit_budget`;
* *Is the area worth it?* -- :func:`accuracy_per_overhead` and the
  trade-off table;
* *When does N-modular redundancy stop paying?* --
  :func:`nmr_breakeven_probability` (the classic p = 1/2 crossover) and
  :func:`marginal_order_gain`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.alu.variants import TABLE2_SITE_COUNTS
from repro.analysis.models import (
    majority_error_prob,
    predicted_percent_correct,
)
from repro.faults.fit import fit_for_fault_fraction

#: Site counts of the single-core configurations per scheme, used to
#: translate fault fractions into FIT rates and area overheads.
_SCHEME_SITES: Dict[str, int] = {
    "none": TABLE2_SITE_COUNTS["alunn"],
    "hamming": TABLE2_SITE_COUNTS["alunh"],
    "tmr": TABLE2_SITE_COUNTS["aluns"],
    "5mr": 16 * 32 * 5,
    "7mr": 16 * 32 * 7,
}


def fault_budget(
    scheme: str,
    target_percent: float,
    tolerance: float = 1e-6,
) -> float:
    """Largest per-site fault probability meeting a target accuracy.

    Bisects the (monotone decreasing) closed-form percent-correct curve.
    Returns 0.0 when even fault-free operation misses the target and
    0.5 when the target is met across the whole modelled range.
    """
    if not 0.0 < target_percent <= 100.0:
        raise ValueError(
            f"target_percent must be in (0, 100], got {target_percent}"
        )
    lo, hi = 0.0, 0.5
    if predicted_percent_correct(scheme, lo) < target_percent:
        return 0.0
    if predicted_percent_correct(scheme, hi) >= target_percent:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if predicted_percent_correct(scheme, mid) >= target_percent:
            lo = mid
        else:
            hi = mid
    return lo


def fit_budget(scheme: str, target_percent: float) -> float:
    """Raw FIT rate a configuration tolerates at a target accuracy.

    The paper's headline in budget form: ``fit_budget("tmr", 98.0)``
    lands in the 1e24 decade.
    """
    fraction = fault_budget(scheme, target_percent)
    return fit_for_fault_fraction(fraction, _SCHEME_SITES[scheme])


def accuracy_per_overhead(scheme: str, p: float) -> float:
    """Predicted percent-correct divided by area overhead vs ``none``.

    A crude figure of merit: how much accuracy each unit of silicon
    (site) buys at fault fraction ``p``.
    """
    overhead = _SCHEME_SITES[scheme] / _SCHEME_SITES["none"]
    return predicted_percent_correct(scheme, p) / overhead


def tradeoff_table(
    p: float,
    schemes: Sequence[str] = ("none", "hamming", "tmr", "5mr", "7mr"),
) -> List[Tuple[str, float, float, float]]:
    """(scheme, overhead, accuracy, accuracy/overhead) rows at one rate."""
    rows = []
    for scheme in schemes:
        overhead = _SCHEME_SITES[scheme] / _SCHEME_SITES["none"]
        accuracy = predicted_percent_correct(scheme, p)
        rows.append((scheme, overhead, accuracy, accuracy / overhead))
    return rows


def nmr_breakeven_probability() -> float:
    """Per-copy error probability above which majority voting *hurts*.

    Classic result: for any odd N, N-modular redundancy beats a single
    copy exactly when the per-copy error probability is below 1/2.
    """
    return 0.5


def marginal_order_gain(p: float, copies: int) -> float:
    """Error-probability reduction from adding two more copies.

    ``majority_error(p, copies) - majority_error(p, copies + 2)`` --
    positive below the breakeven point, shrinking geometrically, which
    is why the paper stops at triplication.
    """
    return majority_error_prob(p, copies) - majority_error_prob(p, copies + 2)
