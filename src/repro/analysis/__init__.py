"""Closed-form reliability models.

Analytical error probabilities for the NanoBox building blocks under
independent per-bit fault injection (the :class:`~repro.faults.mask.
BernoulliMask` model).  The property-based test suite checks the Monte
Carlo simulators against these expressions, and the analysis benchmarks
use them to extrapolate beyond what simulation can sample.
"""

from repro.analysis.models import (
    hamming_lut_read_error_prob,
    instruction_error_prob,
    majority_error_prob,
    nocode_lut_read_error_prob,
    predicted_percent_correct,
    replicated_lut_read_error_prob,
    voted_bundle_error_prob,
)
from repro.analysis.design_space import (
    accuracy_per_overhead,
    fault_budget,
    fit_budget,
    marginal_order_gain,
    nmr_breakeven_probability,
    tradeoff_table,
)
from repro.analysis.system import (
    cell_survival_probability,
    disagreement_probability,
    expected_instructions_to_disable,
    expected_surviving_cells,
    grid_degradation_horizon,
)

__all__ = [
    "accuracy_per_overhead",
    "cell_survival_probability",
    "disagreement_probability",
    "expected_instructions_to_disable",
    "expected_surviving_cells",
    "fault_budget",
    "fit_budget",
    "grid_degradation_horizon",
    "hamming_lut_read_error_prob",
    "instruction_error_prob",
    "majority_error_prob",
    "marginal_order_gain",
    "nmr_breakeven_probability",
    "nocode_lut_read_error_prob",
    "predicted_percent_correct",
    "replicated_lut_read_error_prob",
    "tradeoff_table",
    "voted_bundle_error_prob",
]
