"""System-level reliability composition.

Connects the per-computation models to the grid's watchdog dynamics: how
often does a cell's triple computation *detect* an error (result copies
disagreeing), how many instructions until a cell exceeds its heartbeat
error threshold and is disabled, and what fraction of a grid survives a
job of a given length.  These are the closed-form counterparts of the
failover machinery in :mod:`repro.grid`, checked against simulation by
the test suite.
"""

from __future__ import annotations

import math
from typing import Dict

from scipy import stats

from repro.alu.base import Opcode
from repro.analysis.models import instruction_error_prob, per_read_error_prob


def disagreement_probability(
    scheme: str, p: float, workload_mix: Dict[Opcode, float] = None
) -> float:
    """Probability one triple computation's result copies disagree.

    Each of the three copies is independently wrong with the
    per-instruction error probability ``e``; the copies *agree* when all
    three are right, or all three are wrong in the same way.  At NanoBox
    error rates a wrong result is near-uniform over many values, so the
    all-wrong-agreeing term is negligible and
    ``P(disagree) ~ 1 - (1 - e)^3``.
    """
    if workload_mix is None:
        workload_mix = {Opcode.XOR: 0.5, Opcode.ADD: 0.5}
    total = sum(workload_mix.values())
    if not math.isclose(total, 1.0, rel_tol=1e-9):
        raise ValueError(f"workload mix fractions must sum to 1, got {total}")
    q = per_read_error_prob(scheme, p)
    disagree = 0.0
    for opcode, fraction in workload_mix.items():
        e = instruction_error_prob(q, opcode)
        disagree += fraction * (1.0 - (1.0 - e) ** 3)
    return disagree


def expected_instructions_to_disable(
    error_threshold: int, disagreement_prob: float
) -> float:
    """Mean instructions a cell computes before the watchdog disables it.

    The heartbeat goes silent after ``error_threshold + 1`` detected
    errors; detections are i.i.d. per instruction, so the count to the
    (t+1)-th detection is negative binomial with mean ``(t+1)/p``.
    Returns ``inf`` when the detection probability is zero.
    """
    if error_threshold < 0:
        raise ValueError(f"error_threshold must be non-negative, got {error_threshold}")
    if not 0.0 <= disagreement_prob <= 1.0:
        raise ValueError(
            f"disagreement_prob must be within [0, 1], got {disagreement_prob}"
        )
    if disagreement_prob == 0.0:
        return math.inf
    return (error_threshold + 1) / disagreement_prob


def cell_survival_probability(
    instructions: int, error_threshold: int, disagreement_prob: float
) -> float:
    """Probability a cell survives ``instructions`` computations.

    Survival means at most ``error_threshold`` detections:
    ``P(Binomial(n, p) <= t)``.
    """
    if instructions < 0:
        raise ValueError(f"instructions must be non-negative, got {instructions}")
    if disagreement_prob == 0.0:
        return 1.0
    return float(
        stats.binom.cdf(error_threshold, instructions, disagreement_prob)
    )


def expected_surviving_cells(
    n_cells: int,
    instructions_per_cell: int,
    error_threshold: int,
    disagreement_prob: float,
) -> float:
    """Expected alive cells after a job (cells fail independently)."""
    if n_cells < 0:
        raise ValueError(f"n_cells must be non-negative, got {n_cells}")
    return n_cells * cell_survival_probability(
        instructions_per_cell, error_threshold, disagreement_prob
    )


def grid_degradation_horizon(
    scheme: str,
    p: float,
    error_threshold: int = 8,
    survival_target: float = 0.9,
) -> int:
    """Instructions per cell until expected survival drops below target.

    Binary-searches the survival curve; the practical "how long can this
    grid run before the watchdog starts harvesting cells" number.
    Returns a large sentinel (10**9) when the target is never crossed.
    """
    if not 0.0 < survival_target < 1.0:
        raise ValueError(
            f"survival_target must be in (0, 1), got {survival_target}"
        )
    d = disagreement_probability(scheme, p)
    if d == 0.0:
        return 10**9
    lo, hi = 0, 1
    while (
        cell_survival_probability(hi, error_threshold, d) >= survival_target
    ):
        hi *= 2
        if hi >= 10**9:
            return 10**9
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if cell_survival_probability(mid, error_threshold, d) >= survival_target:
            lo = mid
        else:
            hi = mid
    return lo
