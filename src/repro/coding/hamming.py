"""Single-error-correcting Hamming code.

This is the "information code" bit-level technique of the paper (Section
2.1): a small number of check bits protect the lookup-table truth table, and
a syndrome decoder corrects the stored bit it believes flipped.

The failure mode that matters for the paper's results: when a code word holds
*more* errors than the code can correct, the syndrome aliases to some other
position and the decoder flips a bit that was previously correct.  Because
the syndrome is computed over the whole stored block, errors on bits the
current lookup never addresses can thereby corrupt the addressed bit -- the
paper's explanation for ``alunh`` losing to the uncoded ``alunn``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.coding.base import BlockCode, DecodeOutcome, DecodeResult
from repro.coding.bits import popcount


def check_bits_for(data_bits: int) -> int:
    """Return the number of Hamming check bits needed for ``data_bits``.

    The classic bound: ``r`` check bits protect up to ``2**r - r - 1`` data
    bits.  For the NanoBox lookup tables, 16 data bits need 5 check bits,
    which is what makes ``alunh`` = 16 LUTs x (32 + 2x5) = 672 fault sites.
    """
    if data_bits <= 0:
        raise ValueError(f"data_bits must be positive, got {data_bits}")
    r = 1
    while (1 << r) - r - 1 < data_bits:
        r += 1
    return r


class HammingCode(BlockCode):
    """Systematic Hamming SEC code over a little-endian stored word.

    The stored word uses the textbook positional layout: stored bit ``i``
    is Hamming position ``i + 1``; check bits live at power-of-two
    positions and each covers every position whose index has the matching
    bit set.
    """

    def __init__(self, data_bits: int) -> None:
        super().__init__(data_bits)
        self._r = check_bits_for(data_bits)
        self._n = data_bits + self._r
        self._data_positions: List[int] = []   # stored indices of data bits
        self._check_positions: List[int] = []  # stored indices of check bits
        for pos in range(1, self._n + 1):
            if pos & (pos - 1) == 0:  # power of two -> check bit
                self._check_positions.append(pos - 1)
            else:
                self._data_positions.append(pos - 1)
        # parity_masks[j]: stored-word mask of every position covered by
        # check bit j (positions whose index has bit j set), check bit
        # included.  Syndrome bit j = parity(stored & mask).
        self._parity_masks: List[int] = []
        for j in range(self._r):
            mask = 0
            for pos in range(1, self._n + 1):
                if pos & (1 << j):
                    mask |= 1 << (pos - 1)
            self._parity_masks.append(mask)
        # Same masks restricted to data positions, used by the encoder.
        data_mask = 0
        for idx in self._data_positions:
            data_mask |= 1 << idx
        self._encode_masks: List[int] = [m & data_mask for m in self._parity_masks]

    @property
    def total_bits(self) -> int:
        return self._n

    @property
    def data_positions(self) -> Tuple[int, ...]:
        """Stored-word indices that hold payload bits, in payload order."""
        return tuple(self._data_positions)

    @property
    def check_positions(self) -> Tuple[int, ...]:
        """Stored-word indices that hold check bits."""
        return tuple(self._check_positions)

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        stored = 0
        for i, idx in enumerate(self._data_positions):
            if (data >> i) & 1:
                stored |= 1 << idx
        for j, idx in enumerate(self._check_positions):
            if popcount(stored & self._encode_masks[j]) & 1:
                stored |= 1 << idx
        return stored

    def syndrome(self, stored: int) -> int:
        """Return the decoder syndrome: 0 if clean, else a Hamming position."""
        self._check_stored_range(stored)
        syn = 0
        for j, mask in enumerate(self._parity_masks):
            if popcount(stored & mask) & 1:
                syn |= 1 << j
        return syn

    def extract(self, stored: int) -> int:
        """Pull the payload bits out of a stored word without decoding."""
        data = 0
        for i, idx in enumerate(self._data_positions):
            if (stored >> idx) & 1:
                data |= 1 << i
        return data

    def decode(self, stored: int) -> DecodeResult:
        syn = self.syndrome(stored)
        if syn == 0:
            return DecodeResult(data=self.extract(stored),
                                outcome=DecodeOutcome.CLEAN)
        if syn <= self._n:
            corrected = stored ^ (1 << (syn - 1))
            return DecodeResult(data=self.extract(corrected),
                                outcome=DecodeOutcome.CORRECTED,
                                flipped_position=syn - 1)
        # Syndrome points past the end of the shortened code word: the
        # decoder knows the word is corrupt but cannot localise the error.
        return DecodeResult(data=self.extract(stored),
                            outcome=DecodeOutcome.DETECTED)
