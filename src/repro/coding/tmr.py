"""Repetition (N-modular redundancy) code.

The paper's best-performing bit-level technique stores the truth-table bit
string in triplicate and votes each addressed bit through a three-input
majority gate (Section 2.1).  ``RepetitionCode`` generalises to any odd
number of copies so ablation studies can sweep the redundancy order.
"""

from __future__ import annotations

from repro.coding.base import BlockCode, DecodeOutcome, DecodeResult
from repro.coding.bits import bit_length_mask, majority_int


class RepetitionCode(BlockCode):
    """Store ``copies`` identical images of the payload, decode by majority.

    Unlike an information code, a repetition decoder only ever looks at the
    copies of the bit actually being read, so faults on non-addressed bits
    are invisible -- no mis-correction cross-talk.  Combined with the 3x
    storage cost this is exactly the trade-off the paper explores in [16,17].

    Two physical layouts are supported.  Under the paper's uniform fault
    model they are statistically identical; under *spatially correlated*
    bursts they are not:

    * ``"blocked"`` (default) -- copy ``c`` occupies positions
      ``c*m .. c*m+m-1``.  A short burst lands inside one copy and is
      voted away.
    * ``"interleaved"`` -- the copies of bit ``i`` sit at adjacent
      positions ``i*copies .. i*copies+copies-1``.  A burst of length
      >= ``(copies+1)//2 + 1``... in practice a burst spanning two copies
      of the same bit defeats the vote -- the layout-vulnerability the
      burst-fault ablation measures.
    """

    LAYOUTS = ("blocked", "interleaved")

    def __init__(
        self, data_bits: int, copies: int = 3, layout: str = "blocked"
    ) -> None:
        super().__init__(data_bits)
        if copies < 1 or copies % 2 == 0:
            raise ValueError(f"copies must be a positive odd number, got {copies}")
        if layout not in self.LAYOUTS:
            raise ValueError(
                f"layout must be one of {self.LAYOUTS}, got {layout!r}"
            )
        self._copies = copies
        self._layout = layout

    @property
    def copies(self) -> int:
        """Number of stored images of the payload."""
        return self._copies

    @property
    def layout(self) -> str:
        """Physical copy layout: ``"blocked"`` or ``"interleaved"``."""
        return self._layout

    @property
    def total_bits(self) -> int:
        return self.data_bits * self._copies

    def position(self, copy: int, index: int) -> int:
        """Stored position of payload bit ``index`` in copy ``copy``."""
        if self._layout == "blocked":
            return copy * self.data_bits + index
        return index * self._copies + copy

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        if self._layout == "blocked":
            stored = 0
            for c in range(self._copies):
                stored |= data << (c * self.data_bits)
            return stored
        stored = 0
        for i in range(self.data_bits):
            if (data >> i) & 1:
                for c in range(self._copies):
                    stored |= 1 << self.position(c, i)
        return stored

    def copy_words(self, stored: int):
        """Split a stored word into its ``copies`` payload-width images."""
        self._check_stored_range(stored)
        if self._layout == "blocked":
            mask = bit_length_mask(self.data_bits)
            return [
                (stored >> (c * self.data_bits)) & mask
                for c in range(self._copies)
            ]
        words = []
        for c in range(self._copies):
            word = 0
            for i in range(self.data_bits):
                word |= ((stored >> self.position(c, i)) & 1) << i
            words.append(word)
        return words

    def decode(self, stored: int) -> DecodeResult:
        words = self.copy_words(stored)
        data = majority_int(words)
        if all(w == data for w in words):
            return DecodeResult(data=data, outcome=DecodeOutcome.CLEAN)
        return DecodeResult(data=data, outcome=DecodeOutcome.CORRECTED)

    def decode_bit(self, stored: int, index: int) -> int:
        """Majority-vote a single payload bit -- the lookup-table fast path.

        This mirrors the hardware, where only the addressed bit of each copy
        reaches the majority gate.
        """
        if index < 0 or index >= self.data_bits:
            raise IndexError(f"bit index {index} out of range 0..{self.data_bits - 1}")
        ones = 0
        for c in range(self._copies):
            ones += (stored >> self.position(c, index)) & 1
        return 1 if ones > self._copies // 2 else 0
