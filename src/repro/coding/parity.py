"""Detect-only even-parity code.

Not one of the paper's three headline configurations, but the simplest
member of the information-code family the paper cites ([18]); the ablation
benchmarks use it to show what detection-without-correction buys at NanoBox
fault densities.
"""

from __future__ import annotations

from repro.coding.base import BlockCode, DecodeOutcome, DecodeResult
from repro.coding.bits import bit_length_mask, popcount


class ParityCode(BlockCode):
    """One even-parity check bit appended above the payload bits."""

    @property
    def total_bits(self) -> int:
        return self.data_bits + 1

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        parity = popcount(data) & 1
        return data | (parity << self.data_bits)

    def decode(self, stored: int) -> DecodeResult:
        self._check_stored_range(stored)
        data = stored & bit_length_mask(self.data_bits)
        if popcount(stored) & 1:
            # Odd overall parity: some odd number of bits flipped.  A parity
            # code cannot say which, so the payload is passed through as-is.
            return DecodeResult(data=data, outcome=DecodeOutcome.DETECTED)
        return DecodeResult(data=data, outcome=DecodeOutcome.CLEAN)
