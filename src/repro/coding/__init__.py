"""Error-coding substrate for the NanoBox bit level.

The NanoBox bit-level fault-tolerance technique (paper Section 2.1) stores a
logic function's truth table together with check bits of an error-correction
code.  This package provides the codes the paper evaluates:

* :class:`IdentityCode` -- "no code" lookup tables (``alun*`` / ``alu*n``);
* :class:`HammingCode` -- single-error-correcting information code
  (``alu*h``), the paper cites Hamming/Hsiao/Reed-Solomon as the family;
* :class:`RepetitionCode` -- triplicated bit strings voted by majority
  (``alu*s``), i.e. bit-level triple modular redundancy;
* :class:`ParityCode` -- detect-only even parity, used by ablation studies.

All codes operate on Python integers interpreted as little-endian bit strings
(bit ``i`` of the integer is bit ``i`` of the string), which keeps the
fault-injection XOR (paper Figure 6a) a single machine operation.
"""

from repro.coding.base import BlockCode, DecodeOutcome, DecodeResult, IdentityCode
from repro.coding.bits import (
    bit_length_mask,
    bits_from_int,
    bits_to_int,
    hamming_distance,
    majority_int,
    popcount,
    random_word,
)
from repro.coding.hamming import HammingCode
from repro.coding.hsiao import HsiaoCode
from repro.coding.parity import ParityCode
from repro.coding.registry import available_codes, make_code
from repro.coding.tmr import RepetitionCode

__all__ = [
    "BlockCode",
    "DecodeOutcome",
    "DecodeResult",
    "HammingCode",
    "HsiaoCode",
    "IdentityCode",
    "ParityCode",
    "RepetitionCode",
    "available_codes",
    "bit_length_mask",
    "bits_from_int",
    "bits_to_int",
    "hamming_distance",
    "majority_int",
    "make_code",
    "popcount",
    "random_word",
]
