"""Name-based factory for bit-level codes.

The twelve ALU variants of paper Table 2 are generated mechanically from a
(bit-level technique, module-level technique) pair; this registry supplies
the bit-level half by short name:

* ``"none"``    -> :class:`IdentityCode`    (``alu*n``)
* ``"hamming"`` -> :class:`HammingCode`     (``alu*h``)
* ``"tmr"``     -> :class:`RepetitionCode`  (``alu*s``, triplicated strings)
* ``"parity"``  -> :class:`ParityCode`      (ablations only)
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.coding.base import BlockCode, IdentityCode
from repro.coding.hamming import HammingCode
from repro.coding.hsiao import HsiaoCode
from repro.coding.parity import ParityCode
from repro.coding.tmr import RepetitionCode

_FACTORIES: Dict[str, Callable[[int], BlockCode]] = {
    "none": IdentityCode,
    "hamming": HammingCode,
    "hsiao": HsiaoCode,
    "parity": ParityCode,
    "tmr": lambda data_bits: RepetitionCode(data_bits, copies=3),
    "5mr": lambda data_bits: RepetitionCode(data_bits, copies=5),
    "7mr": lambda data_bits: RepetitionCode(data_bits, copies=7),
}


def available_codes() -> Tuple[str, ...]:
    """Return the registered code names, sorted for stable display."""
    return tuple(sorted(_FACTORIES))


def make_code(name: str, data_bits: int) -> BlockCode:
    """Instantiate the named bit-level code for ``data_bits`` of payload.

    Raises:
        KeyError: if ``name`` is not registered.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown code {name!r}; available: {', '.join(available_codes())}"
        ) from None
    return factory(data_bits)
