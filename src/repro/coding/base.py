"""Block-code interface used by the coded lookup tables.

A :class:`BlockCode` turns ``data_bits`` of payload into ``total_bits`` of
storage.  The stored word -- payload *and* check bits -- is what the fault
injector corrupts, mirroring the paper's model where "each bit of the logic
function truth table, along with the truth table check bits, is stored in a
memory cell" (Figure 1b).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.coding.bits import bit_length_mask


class DecodeOutcome(enum.Enum):
    """What the decoder believed happened to the stored word."""

    #: Syndrome was zero: the decoder saw no evidence of corruption.
    CLEAN = "clean"
    #: The decoder flipped one stored bit it believed to be in error.  With
    #: more errors than the code can handle this may be a *mis*-correction --
    #: the mechanism behind the paper's surprising ``alunh`` < ``alunn``
    #: result (Section 5).
    CORRECTED = "corrected"
    #: The decoder saw corruption it could not localise (detect-only codes).
    DETECTED = "detected"


@dataclass(frozen=True)
class DecodeResult:
    """Decoder output: best-effort payload plus what the decoder believed.

    Attributes:
        data: the recovered payload bits (little-endian integer).
        outcome: the decoder's belief about the stored word.
        flipped_position: stored-word bit index the decoder flipped, or
            ``None`` when no correction was applied.
    """

    data: int
    outcome: DecodeOutcome
    flipped_position: Optional[int] = None

    @property
    def corrected(self) -> bool:
        """True when the decoder applied a correction."""
        return self.outcome is DecodeOutcome.CORRECTED


class BlockCode(ABC):
    """Systematic block code over little-endian integer bit strings."""

    def __init__(self, data_bits: int) -> None:
        if data_bits <= 0:
            raise ValueError(f"data_bits must be positive, got {data_bits}")
        self._data_bits = data_bits

    @property
    def data_bits(self) -> int:
        """Number of payload bits per code word."""
        return self._data_bits

    @property
    @abstractmethod
    def total_bits(self) -> int:
        """Number of stored bits per code word (payload + check bits)."""

    @property
    def check_bits(self) -> int:
        """Number of check bits per code word."""
        return self.total_bits - self.data_bits

    @property
    def overhead(self) -> float:
        """Storage overhead ratio ``total_bits / data_bits``."""
        return self.total_bits / self.data_bits

    @abstractmethod
    def encode(self, data: int) -> int:
        """Encode ``data`` (``data_bits`` wide) into a stored word."""

    @abstractmethod
    def decode(self, stored: int) -> DecodeResult:
        """Decode a (possibly corrupted) stored word."""

    def _check_data_range(self, data: int) -> None:
        if data < 0 or data >> self.data_bits:
            raise ValueError(
                f"data {data:#x} does not fit in {self.data_bits} data bits"
            )

    def _check_stored_range(self, stored: int) -> None:
        if stored < 0 or stored >> self.total_bits:
            raise ValueError(
                f"stored word {stored:#x} does not fit in {self.total_bits} bits"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(data_bits={self.data_bits}, "
            f"total_bits={self.total_bits})"
        )


class IdentityCode(BlockCode):
    """The "no code" configuration: stored word is the payload itself.

    Used by the ``alunn`` / ``alutn`` / ``alusn`` lookup tables.  Errors on
    bits that a given lookup does not address are simply never observed --
    the property that lets no-code tables beat Hamming-coded ones at high
    fault densities (paper Section 5).
    """

    @property
    def total_bits(self) -> int:
        return self.data_bits

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        return data

    def decode(self, stored: int) -> DecodeResult:
        self._check_stored_range(stored)
        return DecodeResult(data=stored & bit_length_mask(self.data_bits),
                            outcome=DecodeOutcome.CLEAN)
