"""Hsiao SEC-DED code (odd-weight-column single-error-correcting,
double-error-detecting).

The paper names Hsiao alongside Hamming and Reed-Solomon as candidate
information codes for the lookup-table check bits (Section 2.1, [18]).
Hsiao's construction assigns every data bit a distinct *odd-weight*
parity-check column of weight >= 3, and check bit ``i`` the unit column
``e_i``.  The decoder then separates cleanly:

* zero syndrome        -> clean;
* odd-weight syndrome  -> single error at the matching column (corrected);
* even-weight syndrome -> double error (detected, not corrected).

That double-error *detection* is exactly what the paper's Hamming
configuration lacks: a NanoBox LUT built on Hsiao can refuse to
"correct" on an even syndrome instead of firing the false positives that
sank ``alunh`` -- the comparison the ``hsiao`` ablation runs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.coding.base import BlockCode, DecodeOutcome, DecodeResult
from repro.coding.bits import popcount


def check_bits_for(data_bits: int) -> int:
    """Minimum ``r`` such that the odd-weight columns of width ``r``
    (weight >= 3) can cover ``data_bits`` data bits.

    For the NanoBox 16-bit block this gives 6 check bits -- the classic
    Hsiao (22, 16) code.
    """
    if data_bits <= 0:
        raise ValueError(f"data_bits must be positive, got {data_bits}")
    r = 3
    while True:
        capacity = sum(
            _count_combinations(r, w) for w in range(3, r + 1, 2)
        )
        if capacity >= data_bits:
            return r
        r += 1


def _count_combinations(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


def _odd_weight_columns(r: int, count: int) -> List[int]:
    """First ``count`` odd-weight (>= 3) columns of width ``r``.

    Hsiao's optimisation picks minimum-total-weight column sets, so the
    columns are enumerated weight 3 first, then weight 5, and so on; ties
    broken by numeric order for determinism.
    """
    columns: List[int] = []
    for weight in range(3, r + 1, 2):
        for positions in itertools.combinations(range(r), weight):
            column = 0
            for p in positions:
                column |= 1 << p
            columns.append(column)
            if len(columns) == count:
                return columns
    raise ValueError(f"width {r} cannot supply {count} odd-weight columns")


class HsiaoCode(BlockCode):
    """Systematic Hsiao SEC-DED code.

    Stored-word layout: data bits at indices ``0 .. data_bits-1``, check
    bits above them.  (Unlike :class:`~repro.coding.hamming.HammingCode`'s
    positional layout, Hsiao codes are conventionally systematic.)
    """

    def __init__(self, data_bits: int) -> None:
        super().__init__(data_bits)
        self._r = check_bits_for(data_bits)
        self._n = data_bits + self._r
        self._columns = _odd_weight_columns(self._r, data_bits)
        # column value -> data index, for syndrome-to-position decoding.
        self._column_index: Dict[int, int] = {
            col: i for i, col in enumerate(self._columns)
        }
        # Check-bit masks over the data bits: check j covers every data
        # bit whose column has bit j set.
        self._check_masks: List[int] = []
        for j in range(self._r):
            mask = 0
            for i, col in enumerate(self._columns):
                if (col >> j) & 1:
                    mask |= 1 << i
            self._check_masks.append(mask)

    @property
    def total_bits(self) -> int:
        return self._n

    @property
    def columns(self) -> Tuple[int, ...]:
        """The odd-weight parity-check column of each data bit."""
        return tuple(self._columns)

    def encode(self, data: int) -> int:
        self._check_data_range(data)
        stored = data
        for j, mask in enumerate(self._check_masks):
            if popcount(data & mask) & 1:
                stored |= 1 << (self.data_bits + j)
        return stored

    def syndrome(self, stored: int) -> int:
        """Recompute check bits and XOR against the stored ones."""
        self._check_stored_range(stored)
        data = stored & ((1 << self.data_bits) - 1)
        syn = 0
        for j, mask in enumerate(self._check_masks):
            parity = popcount(data & mask) & 1
            stored_check = (stored >> (self.data_bits + j)) & 1
            if parity ^ stored_check:
                syn |= 1 << j
        return syn

    def decode(self, stored: int) -> DecodeResult:
        syn = self.syndrome(stored)
        data_mask = (1 << self.data_bits) - 1
        if syn == 0:
            return DecodeResult(data=stored & data_mask,
                                outcome=DecodeOutcome.CLEAN)
        weight = popcount(syn)
        if weight % 2 == 1:
            # Odd syndrome: single error.  Unit-weight syndromes point at
            # a check bit (data untouched); otherwise look the column up.
            if weight == 1:
                check_index = syn.bit_length() - 1
                return DecodeResult(
                    data=stored & data_mask,
                    outcome=DecodeOutcome.CORRECTED,
                    flipped_position=self.data_bits + check_index,
                )
            data_index = self._column_index.get(syn)
            if data_index is not None:
                corrected = stored ^ (1 << data_index)
                return DecodeResult(
                    data=corrected & data_mask,
                    outcome=DecodeOutcome.CORRECTED,
                    flipped_position=data_index,
                )
            # Odd syndrome matching no column: >= 3 errors, uncorrectable.
            return DecodeResult(data=stored & data_mask,
                                outcome=DecodeOutcome.DETECTED)
        # Even nonzero syndrome: double error -- detected, never
        # "corrected".  This is the property that shuts off the paper's
        # false-positive pathway.
        return DecodeResult(data=stored & data_mask,
                            outcome=DecodeOutcome.DETECTED)
