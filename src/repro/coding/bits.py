"""Bit-string helpers shared across the coding, LUT, and fault packages.

Bit strings are plain Python integers: bit ``i`` of the integer is position
``i`` of the string.  Integers make the paper's fault-injection model (XOR a
stored bit string with a randomly generated fault mask, Figure 6a) a single
``^`` operation regardless of string length.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

try:  # Python >= 3.10
    _POPCOUNT = int.bit_count  # type: ignore[attr-defined]

    def popcount(value: int) -> int:
        """Return the number of set bits in ``value`` (``value >= 0``)."""
        return _POPCOUNT(value)

except AttributeError:  # pragma: no cover - exercised only on Python 3.9

    def popcount(value: int) -> int:
        """Return the number of set bits in ``value`` (``value >= 0``)."""
        return bin(value).count("1")


def bit_length_mask(n_bits: int) -> int:
    """Return an integer with the low ``n_bits`` bits set.

    >>> bin(bit_length_mask(4))
    '0b1111'
    """
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (1 << n_bits) - 1


def bits_from_int(value: int, n_bits: int) -> List[int]:
    """Expand ``value`` into a little-endian list of ``n_bits`` 0/1 ints.

    >>> bits_from_int(0b1011, 4)
    [1, 1, 0, 1]
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> n_bits:
        raise ValueError(f"value {value:#x} does not fit in {n_bits} bits")
    return [(value >> i) & 1 for i in range(n_bits)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a little-endian sequence of 0/1 values into an integer.

    >>> bits_to_int([1, 1, 0, 1])
    11
    """
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        value |= bit << i
    return value


def hamming_distance(a: int, b: int) -> int:
    """Return the number of bit positions at which ``a`` and ``b`` differ."""
    return popcount(a ^ b)


def majority_int(words: Iterable[int]) -> int:
    """Bitwise majority vote over an odd number of equal-width words.

    This is the voting rule the NanoBox uses both for triplicated lookup
    table bit strings and for the triplicated critical fields of a memory
    word (paper Sections 2.1-2.2).

    >>> majority_int([0b1100, 0b1010, 0b1001])
    8
    """
    word_list = list(words)
    if not word_list:
        raise ValueError("majority_int needs at least one word")
    if len(word_list) % 2 == 0:
        raise ValueError(
            f"majority vote requires an odd number of words, got {len(word_list)}"
        )
    if len(word_list) == 3:  # the common case, worth a closed form
        a, b, c = word_list
        return (a & b) | (b & c) | (a & c)
    threshold = len(word_list) // 2
    width = max(w.bit_length() for w in word_list)
    result = 0
    for i in range(width):
        ones = sum((w >> i) & 1 for w in word_list)
        if ones > threshold:
            result |= 1 << i
    return result


def random_word(n_bits: int, rng) -> int:
    """Draw a uniformly random ``n_bits``-wide integer from ``rng``.

    ``rng`` is a :class:`numpy.random.Generator`; all randomness in this
    library flows through explicitly seeded generators so experiments are
    reproducible.
    """
    value = 0
    remaining = n_bits
    shift = 0
    while remaining > 0:
        chunk = min(remaining, 32)
        value |= int(rng.integers(0, 1 << chunk)) << shift
        shift += chunk
        remaining -= chunk
    return value
