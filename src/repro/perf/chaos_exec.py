"""Process-level chaos harness: prove the campaign runtime survives death.

``repro.experiments.chaos_fabric`` injects faults into the *simulated*
transport fabric; this module injects faults into the *real* campaign
runtime -- child processes running actual ``nanobox-repro`` sweeps --
and asserts the crash-safety invariants end to end:

==========  ====================================  =======================
mode        injected fault                        asserted invariant
==========  ====================================  =======================
kill        SIGKILL at a chunk boundary           resume is byte-identical
                                                  to an uninterrupted run
hang        a worker wedges for minutes           executor timeout + pool
                                                  rebuild recover in-run
corrupt     checkpoint truncated + bit-flipped    quarantined ``*.corrupt``
                                                  + recomputed, identical
disk-full   every checkpoint write ENOSPCs        run completes, output
                                                  unperturbed, degradation
                                                  reported
deadline    budget expires before any chunk       explicit INCOMPLETE
                                                  partial report; resume
                                                  completes identically
==========  ====================================  =======================

Faults are injected through deterministic knobs (environment variables
honoured by :mod:`repro.perf.resilient`, :mod:`repro.perf.checkpoint`
and the executor's worker entry point) rather than wall-clock races, so
two harness runs produce byte-identical reports -- which CI asserts,
the same two-run determinism gate every prior layer carries.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.checkpoint import CHAOS_DISK_FULL_ENV
from repro.perf.executor import CHAOS_HANG_ENV
from repro.perf.resilient import CHAOS_KILL_ENV

__all__ = [
    "CHAOS_MODES",
    "ChaosOutcome",
    "chaos_exec_report",
    "run_chaos_mode",
    "run_chaos_suite",
]

#: Every fault mode the harness can inject, in report order.
CHAOS_MODES = ("kill", "hang", "corrupt", "disk-full", "deadline")

#: Exit status the CLI uses for well-formed partial (incomplete) runs.
EXIT_INCOMPLETE = 3

_REUSED_RE = re.compile(r"reused (\d+)/(\d+) chunk")
_QUARANTINED_RE = re.compile(r"quarantined (\d+) corrupt")


@dataclass(frozen=True)
class ChaosOutcome:
    """What one injected fault did, and whether the runtime survived it.

    Attributes:
        mode: the fault mode injected.
        fault: human description of the injection.
        recovered: the invariant held -- a complete, correct result (or
            for ``deadline``, an explicit partial followed by a clean
            resume) was obtained.
        byte_identical: final output byte-for-byte equals the clean
            uninterrupted reference run.
        reused_chunks / total_chunks: checkpoints served on the recovery
            run (-1 when the mode has no recovery run).
        quarantined: corrupt checkpoint records detected + set aside.
        detail: deterministic one-line postscript for the report.
    """

    mode: str
    fault: str
    recovered: bool
    byte_identical: bool
    reused_chunks: int
    total_chunks: int
    quarantined: int
    detail: str


def _src_path() -> str:
    """The ``src`` directory that makes ``repro`` importable in children."""
    return str(Path(__file__).resolve().parents[2])


def _child_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """A clean child environment: no inherited chaos knobs, repro on path."""
    env = {
        key: value
        for key, value in os.environ.items()
        if not key.startswith("REPRO_CHAOS_")
    }
    existing = env.get("PYTHONPATH")
    src = _src_path()
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    if extra:
        env.update(extra)
    return env


def _run_cli(
    argv: Sequence[str],
    env_extra: Optional[Dict[str, str]] = None,
    timeout: float = 300.0,
) -> Tuple[int, str, str]:
    """Run ``nanobox-repro`` in a child process: (rc, stdout, stderr)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=_child_env(env_extra),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    return proc.returncode, proc.stdout, proc.stderr


def _parse_reuse(stderr: str) -> Tuple[int, int]:
    match = _REUSED_RE.search(stderr)
    return (int(match.group(1)), int(match.group(2))) if match else (-1, -1)


def _parse_quarantined(stderr: str) -> int:
    match = _QUARANTINED_RE.search(stderr)
    return int(match.group(1)) if match else 0


class _ChaosContext:
    """Shared per-suite state: the target sweep and its clean reference."""

    def __init__(
        self,
        workdir: Path,
        seed: int = 2004,
        chunk_size: int = 4,
        timeout: float = 300.0,
    ) -> None:
        self.workdir = workdir
        self.seed = seed
        self.chunk_size = chunk_size
        self.timeout = timeout
        rc, stdout, stderr = _run_cli(self._target_argv(), timeout=timeout)
        if rc != 0:
            raise RuntimeError(
                f"clean reference run failed (rc {rc}): {stderr.strip()}"
            )
        self.reference = stdout

    def _target_argv(self, *resilience: str) -> List[str]:
        return [
            "sweep",
            "--quick",
            "--seed",
            str(self.seed),
            *resilience,
        ]

    def run_target(
        self,
        checkpoint_dir: Path,
        *flags: str,
        env_extra: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, str, str]:
        argv = self._target_argv(
            "--checkpoint-dir",
            str(checkpoint_dir),
            "--checkpoint-chunk-size",
            str(self.chunk_size),
            *flags,
        )
        return _run_cli(argv, env_extra=env_extra, timeout=self.timeout)

    def checkpoint_files(self, checkpoint_dir: Path) -> List[Path]:
        return sorted(checkpoint_dir.glob("*/chunk_*.json"))

    def corrupt_files(self, checkpoint_dir: Path) -> List[Path]:
        return sorted(checkpoint_dir.glob("*/chunk_*.corrupt*"))


def _mode_kill(ctx: _ChaosContext) -> ChaosOutcome:
    """SIGKILL after chunk 1's checkpoint lands; resume must be exact."""
    ckdir = ctx.workdir / "kill"
    rc, _, _ = ctx.run_target(ckdir, env_extra={CHAOS_KILL_ENV: "1"})
    died_by_sigkill = rc == -signal.SIGKILL
    survivors = len(ctx.checkpoint_files(ckdir))
    rc2, out2, err2 = ctx.run_target(ckdir, "--resume")
    reused, total = _parse_reuse(err2)
    identical = out2 == ctx.reference
    return ChaosOutcome(
        mode="kill",
        fault="SIGKILL after chunk 1 checkpoint",
        recovered=died_by_sigkill and rc2 == 0 and identical,
        byte_identical=identical,
        reused_chunks=reused,
        total_chunks=total,
        quarantined=0,
        detail=(
            f"killed with SIGKILL, {survivors} chunk(s) survived on disk, "
            f"resume exit {rc2}"
        ),
    )


def _mode_hang(ctx: _ChaosContext) -> ChaosOutcome:
    """One worker wedges; the executor's timeout recovery finishes the run."""
    ckdir = ctx.workdir / "hang"
    sentinel = ctx.workdir / "hang.sentinel"
    rc, out, err = ctx.run_target(
        ckdir,
        "--jobs",
        "2",
        "--chunk-timeout",
        "2",
        env_extra={
            CHAOS_HANG_ENV: str(sentinel),
            "REPRO_CHAOS_HANG_SECS": "600",
        },
    )
    identical = out == ctx.reference
    hung = sentinel.exists()  # a worker really did claim the hang
    return ChaosOutcome(
        mode="hang",
        fault="worker wedged 600s (timeout budget 2s)",
        recovered=rc == 0 and identical and hung,
        byte_identical=identical,
        reused_chunks=-1,
        total_chunks=-1,
        quarantined=0,
        detail=f"in-run recovery via pool rebuild, exit {rc}",
    )


def _mode_corrupt(ctx: _ChaosContext) -> ChaosOutcome:
    """Truncate one record, bit-flip another; both must be quarantined."""
    ckdir = ctx.workdir / "corrupt"
    rc, _, _ = ctx.run_target(ckdir)
    files = ctx.checkpoint_files(ckdir)
    if rc != 0 or len(files) < 2:
        return ChaosOutcome(
            mode="corrupt",
            fault="checkpoint truncation + bit flip",
            recovered=False,
            byte_identical=False,
            reused_chunks=-1,
            total_chunks=-1,
            quarantined=0,
            detail=f"setup run failed (exit {rc}, {len(files)} records)",
        )
    # Truncate the first record mid-document ...
    truncated = files[0]
    truncated.write_text(truncated.read_text()[: truncated.stat().st_size // 2])
    # ... and flip one bit inside the second record's payload.
    flipped = files[1]
    blob = bytearray(flipped.read_bytes())
    target = blob.rfind(b'"total"')
    blob[target + len(b'"total"') + 3] ^= 0x01  # a digit of the value
    flipped.write_bytes(bytes(blob))
    rc2, out2, err2 = ctx.run_target(ckdir, "--resume")
    reused, total = _parse_reuse(err2)
    quarantined = _parse_quarantined(err2)
    on_disk = len(ctx.corrupt_files(ckdir))
    identical = out2 == ctx.reference
    return ChaosOutcome(
        mode="corrupt",
        fault="one record truncated, one bit-flipped",
        recovered=rc2 == 0 and identical and quarantined == 2 and on_disk == 2,
        byte_identical=identical,
        reused_chunks=reused,
        total_chunks=total,
        quarantined=quarantined,
        detail=f"{on_disk} *.corrupt file(s) kept for post-mortem",
    )


def _mode_disk_full(ctx: _ChaosContext) -> ChaosOutcome:
    """ENOSPC after two checkpoint writes; the run must not care."""
    ckdir = ctx.workdir / "disk-full"
    rc, out, err = ctx.run_target(
        ckdir, env_extra={CHAOS_DISK_FULL_ENV: "2"}
    )
    identical = out == ctx.reference
    written = len(ctx.checkpoint_files(ckdir))
    degraded = "degraded" in err
    return ChaosOutcome(
        mode="disk-full",
        fault="ENOSPC on every checkpoint write after the second",
        recovered=rc == 0 and identical and degraded,
        byte_identical=identical,
        reused_chunks=-1,
        total_chunks=-1,
        quarantined=0,
        detail=f"{written} record(s) written before the disk filled, "
               f"exit {rc}",
    )


def _mode_deadline(ctx: _ChaosContext) -> ChaosOutcome:
    """An expired budget yields an explicit partial; resume completes it."""
    ckdir = ctx.workdir / "deadline"
    rc, out, _ = ctx.run_target(ckdir, "--deadline", "0.000001")
    partial = rc == EXIT_INCOMPLETE and "INCOMPLETE" in out
    rc2, out2, err2 = ctx.run_target(ckdir, "--resume")
    reused, total = _parse_reuse(err2)
    identical = out2 == ctx.reference
    return ChaosOutcome(
        mode="deadline",
        fault="1µs deadline (expires before the first chunk)",
        recovered=partial and rc2 == 0 and identical,
        byte_identical=identical,
        reused_chunks=reused,
        total_chunks=total,
        quarantined=0,
        detail=(
            f"partial exit {rc} with INCOMPLETE report, "
            f"resume exit {rc2}"
        ),
    )


_MODE_RUNNERS = {
    "kill": _mode_kill,
    "hang": _mode_hang,
    "corrupt": _mode_corrupt,
    "disk-full": _mode_disk_full,
    "deadline": _mode_deadline,
}


def run_chaos_mode(
    mode: str,
    workdir: Path,
    seed: int = 2004,
    chunk_size: int = 4,
    timeout: float = 300.0,
) -> ChaosOutcome:
    """Inject one fault mode against a fresh working directory."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ctx = _ChaosContext(
        workdir, seed=seed, chunk_size=chunk_size, timeout=timeout
    )
    return _run_mode(ctx, mode)


def _run_mode(ctx: _ChaosContext, mode: str) -> ChaosOutcome:
    try:
        runner = _MODE_RUNNERS[mode]
    except KeyError:
        raise ValueError(
            f"unknown chaos mode {mode!r}; valid: {CHAOS_MODES}"
        ) from None
    return runner(ctx)


def run_chaos_suite(
    modes: Sequence[str] = CHAOS_MODES,
    workdir: Optional[Path] = None,
    seed: int = 2004,
    chunk_size: int = 4,
    timeout: float = 300.0,
    echo=None,
) -> List[ChaosOutcome]:
    """Run several fault modes against one shared reference run."""
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ctx = _ChaosContext(
        workdir, seed=seed, chunk_size=chunk_size, timeout=timeout
    )
    outcomes: List[ChaosOutcome] = []
    for mode in modes:
        outcome = _run_mode(ctx, mode)
        outcomes.append(outcome)
        if echo is not None:
            status = "RECOVERED" if outcome.recovered else "FAILED"
            echo(f"{mode:>10}  {status:<10} {outcome.detail}")
    return outcomes


def chaos_exec_report(outcomes: Sequence[ChaosOutcome]) -> str:
    """The deterministic fixed-width report CI byte-compares."""
    from repro.experiments.report import format_table

    rows = []
    for o in outcomes:
        reused = (
            f"{o.reused_chunks}/{o.total_chunks}"
            if o.reused_chunks >= 0
            else "-"
        )
        rows.append(
            (
                o.mode,
                o.fault,
                "yes" if o.recovered else "NO",
                "yes" if o.byte_identical else "NO",
                reused,
                str(o.quarantined),
                o.detail,
            )
        )
    return format_table(
        (
            "mode",
            "injected fault",
            "recovered",
            "identical",
            "reused",
            "quarantined",
            "detail",
        ),
        rows,
    )
