"""Resilient chunked execution: checkpoints, deadlines, circuit breaking.

:class:`~repro.perf.executor.CampaignExecutor` already survives a worker
dying; this layer makes whole *runs* survive the process itself dying.
It decomposes a run into ordered chunks of pure tasks and drives each
chunk through a recovery state machine::

        ┌──────────── deadline exceeded ──► SKIPPED (partial result)
        ▼
    chunk i ── checkpoint hit ───────────► REUSED  (no compute)
        │
        └─ miss/corrupt ─► RUN ─ ok ─────► DONE    (checkpointed)
                            │
                            └ fail ─► backoff+jitter, retry
                                       │ (attempts exhausted, or
                                       ▼  breaker open)
                                     DEAD-LETTERED (recorded, pool
                                                    keeps moving)

Guarantees:

* **Byte-identical resume.**  Tasks are pure functions of their specs
  (the same property the parallel executor relies on), chunk payloads
  round-trip losslessly through JSON, and the run key covers the chunk
  partitioning -- so a run interrupted at *any* chunk boundary and
  resumed produces exactly the results of an uninterrupted run.
* **Honest partial results.**  A ``--deadline`` that expires, or chunks
  that exhaust their retry budget, never abort the run: the outcome
  reports exactly which chunks completed, which were dead-lettered and
  why, and whether the deadline was hit, so callers emit a well-formed
  partial report with explicit ``incomplete`` provenance.
* **No stalls.**  Per-chunk exponential backoff is jittered
  (deterministically, from the run key) to avoid thundering retries,
  and a circuit breaker trips after consecutive chunk failures so a
  systematically broken run fails fast instead of burning the full
  backoff schedule on every remaining chunk.

Ctrl-C is honoured everywhere: completed chunks are already durable, a
final ``state.json`` flush records progress, and the interrupt
re-raises so the shell sees a real SIGINT death.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.faults.campaign import CampaignResult, TrialResult
from repro.obs import get_observer
from repro.perf.checkpoint import CheckpointStore, run_key_for
from repro.perf.executor import CampaignExecutor, CampaignWorkItem

__all__ = [
    "CHAOS_KILL_ENV",
    "BackoffPolicy",
    "DeadLetter",
    "ResilientOutcome",
    "ResilientRunner",
    "ResilientRuntime",
    "decode_campaign_result",
    "encode_campaign_result",
    "resilience_note",
    "resilient_campaign_map",
]

#: Chaos hook (test/harness only): SIGKILL our own process immediately
#: after the checkpoint for this chunk index is durably written -- a
#: deterministic stand-in for an OOM kill or power loss at a chunk
#: boundary.  Set by ``nanobox-repro chaos-exec --modes kill``.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_AFTER_CHUNK"


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(key, attempt)`` grows ``base * factor**attempt`` capped at
    ``max_delay``, scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` with a PRNG seeded from ``key`` and
    ``attempt`` -- reproducible for tests, decorrelated across chunks.
    """

    base: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base < 0 or self.factor < 1 or self.max_delay < 0:
            raise ValueError(f"invalid backoff parameters: {self}")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        raw = min(self.base * (self.factor ** attempt), self.max_delay)
        rng = random.Random(f"{key}:{attempt}")
        return raw * rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


@dataclass(frozen=True)
class ResilientRuntime:
    """Operator-facing knobs for one resilient run (all optional).

    Attributes:
        checkpoint_dir: directory for durable chunk records; ``None``
            disables checkpointing entirely.
        resume: reuse valid existing records (otherwise the run
            recomputes everything and overwrites).
        deadline: wall-clock budget in seconds; on expiry the run stops
            scheduling chunks and reports an explicit partial outcome.
        chunk_size: tasks per checkpointed chunk.
        chunk_timeout: per-chunk timeout handed to the campaign
            executor's hung-worker recovery (parallel runs only).
        max_attempts: tries per chunk before it is dead-lettered.
        breaker_threshold: consecutive dead-lettered chunks that trip
            the circuit breaker (subsequent failing chunks get a single
            fast-fail attempt until one succeeds again).
    """

    checkpoint_dir: Optional[Path] = None
    resume: bool = False
    deadline: Optional[float] = None
    chunk_size: int = 4
    chunk_timeout: Optional[float] = None
    max_attempts: int = 3
    breaker_threshold: int = 3
    backoff: BackoffPolicy = BackoffPolicy()

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")


@dataclass(frozen=True)
class DeadLetter:
    """One chunk retired by the circuit breaker / retry budget."""

    chunk: int
    attempts: int
    error: str


@dataclass
class ResilientOutcome:
    """Everything one resilient run produced and how it got there."""

    results: List[Optional[Any]]
    chunks: int = 0
    chunk_size: int = 1
    reused_chunks: int = 0
    computed_chunks: int = 0
    skipped_chunks: int = 0
    deadline_hit: bool = False
    retries: int = 0
    breaker_trips: int = 0
    dead_letters: Tuple[DeadLetter, ...] = ()
    run_key: Optional[str] = None
    checkpoint_stats: Optional[Any] = None  # CheckpointStats when stored

    @property
    def complete(self) -> bool:
        """True when every task produced a result."""
        return all(result is not None for result in self.results)

    @property
    def missing_tasks(self) -> List[int]:
        """Indices of tasks with no result (deadline or dead-letter)."""
        return [i for i, r in enumerate(self.results) if r is None]


class ResilientRunner:
    """Drives ordered task chunks through the recovery state machine.

    Args:
        run_chunk: ``(chunk_index, tasks) -> results`` for one chunk;
            must be a pure function of the tasks (the resume guarantee
            depends on it).
        runtime: the operator knobs (see :class:`ResilientRuntime`).
        config: JSON-safe mapping of everything that determines the
            run's results (seeds, specs, sweep axes ...).  Combined
            with the chunk partitioning it forms the store's run key.
        kind: payload kind tag for the checkpoint records.
        encode/decode: lossless JSON codec for one task result.
        clock/sleep_fn: injectable monotonic clock and sleeper (tests).
    """

    def __init__(
        self,
        run_chunk: Callable[[int, Sequence[Any]], List[Any]],
        *,
        runtime: ResilientRuntime,
        config: Dict[str, Any],
        kind: str = "chunk",
        encode: Callable[[Any], Any] = lambda result: result,
        decode: Callable[[Any], Any] = lambda payload: payload,
        clock: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], None] = time.sleep,
    ) -> None:
        self._run_chunk = run_chunk
        self._runtime = runtime
        self._encode = encode
        self._decode = decode
        self._clock = clock
        self._sleep = sleep_fn
        self._config = {
            "run": dict(config),
            "checkpoint": {
                "kind": kind,
                "chunk_size": runtime.chunk_size,
                "schema_version": 1,
            },
        }
        self._run_key = run_key_for(self._config)
        self._store: Optional[CheckpointStore] = None
        if runtime.checkpoint_dir is not None:
            self._store = CheckpointStore(
                runtime.checkpoint_dir, self._run_key, kind=kind
            )

    @property
    def run_key(self) -> str:
        return self._run_key

    @property
    def store(self) -> Optional[CheckpointStore]:
        return self._store

    def run(self, tasks: Sequence[Any]) -> ResilientOutcome:
        """Execute every task chunk; never raises for chunk failures.

        ``KeyboardInterrupt`` is the exception: progress is flushed and
        the interrupt re-raised so Ctrl-C still kills the run.
        """
        tasks = list(tasks)
        size = self._runtime.chunk_size
        chunks = [tasks[i:i + size] for i in range(0, len(tasks), size)]
        outcome = ResilientOutcome(
            results=[None] * len(tasks),
            chunks=len(chunks),
            chunk_size=size,
            run_key=self._run_key,
        )
        obs = get_observer()
        start = self._clock()
        if self._store is not None:
            self._store.write_state(
                {
                    "config": self._config,
                    "total_chunks": len(chunks),
                    "total_tasks": len(tasks),
                    "status": "running",
                }
            )
        dead: List[DeadLetter] = []
        consecutive_failures = 0
        breaker_open = False
        try:
            for index, chunk in enumerate(chunks):
                if self._deadline_expired(start):
                    outcome.deadline_hit = True
                    outcome.skipped_chunks = len(chunks) - index
                    obs.metrics.counter("resilient.deadline_hits").inc()
                    if obs.enabled:
                        obs.trace.emit(
                            "deadline_exceeded",
                            source="resilient",
                            chunk=index,
                            completed=index,
                            total=len(chunks),
                        )
                    break
                if self._try_reuse(index, chunk, tasks, outcome, size):
                    consecutive_failures = 0
                    breaker_open = False
                    continue
                error = self._compute_chunk(
                    index, chunk, outcome, size, breaker_open, start, obs
                )
                if error is None:
                    consecutive_failures = 0
                    breaker_open = False
                    continue
                dead.append(error)
                consecutive_failures += 1
                obs.metrics.counter("resilient.dead_letters").inc()
                if obs.enabled:
                    obs.trace.emit(
                        "chunk_dead_letter",
                        source="resilient",
                        chunk=error.chunk,
                        attempts=error.attempts,
                        error=error.error,
                    )
                if (
                    not breaker_open
                    and consecutive_failures >= self._runtime.breaker_threshold
                ):
                    breaker_open = True
                    outcome.breaker_trips += 1
                    obs.metrics.counter("resilient.breaker_trips").inc()
                    if obs.enabled:
                        obs.trace.emit(
                            "breaker_open",
                            source="resilient",
                            chunk=index,
                            consecutive_failures=consecutive_failures,
                        )
        except KeyboardInterrupt:
            self._flush_state(outcome, "interrupted")
            obs.metrics.counter("resilient.interrupts").inc()
            if obs.enabled:
                obs.trace.emit(
                    "run_interrupted",
                    source="resilient",
                    completed=outcome.reused_chunks + outcome.computed_chunks,
                    total=outcome.chunks,
                )
            raise
        outcome.dead_letters = tuple(dead)
        if self._store is not None:
            outcome.checkpoint_stats = self._store.stats
        self._flush_state(
            outcome, "complete" if outcome.complete else "partial"
        )
        obs.metrics.counter("resilient.runs").inc()
        obs.metrics.counter("resilient.chunks_reused").inc(
            outcome.reused_chunks
        )
        obs.metrics.counter("resilient.chunks_computed").inc(
            outcome.computed_chunks
        )
        return outcome

    # -- internals ----------------------------------------------------

    def _deadline_expired(self, start: float) -> bool:
        deadline = self._runtime.deadline
        return deadline is not None and self._clock() - start >= deadline

    def _try_reuse(
        self,
        index: int,
        chunk: Sequence[Any],
        tasks: Sequence[Any],
        outcome: ResilientOutcome,
        size: int,
    ) -> bool:
        """Serve one chunk from the store, if resuming and valid."""
        if self._store is None or not self._runtime.resume:
            return False
        payload, hit = self._store.load(index)
        if not hit:
            return False
        if not isinstance(payload, list) or len(payload) != len(chunk):
            # Shape drift is corruption by another name: quarantine-by-
            # recompute (the save below will overwrite the record).
            self._store.stats.corrupt_reasons.append(
                f"chunk {index}: payload arity {len(payload)!r} "
                f"!= {len(chunk)}"
            )
            return False
        for offset, item_payload in enumerate(payload):
            outcome.results[index * size + offset] = self._decode(item_payload)
        outcome.reused_chunks += 1
        return True

    def _compute_chunk(
        self,
        index: int,
        chunk: Sequence[Any],
        outcome: ResilientOutcome,
        size: int,
        breaker_open: bool,
        start: float,
        obs,
    ) -> Optional[DeadLetter]:
        """Run one chunk with retries; a DeadLetter when it never ran."""
        attempts_allowed = 1 if breaker_open else self._runtime.max_attempts
        last_error = "unknown"
        attempt = 0
        while attempt < attempts_allowed:
            try:
                results = self._run_chunk(index, chunk)
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 - fault boundary
                last_error = repr(exc)
                attempt += 1
                obs.metrics.counter("resilient.retries").inc()
                if obs.enabled:
                    obs.trace.emit(
                        "chunk_retry",
                        source="resilient",
                        chunk=index,
                        attempt=attempt,
                        error=last_error,
                    )
                if attempt >= attempts_allowed:
                    break
                if self._deadline_expired(start):
                    break
                self._sleep(
                    self._runtime.backoff.delay(
                        f"{self._run_key}:{index}", attempt - 1
                    )
                )
                continue
            if len(results) != len(chunk):
                raise RuntimeError(
                    f"chunk runner returned {len(results)} results for "
                    f"{len(chunk)} tasks (chunk {index})"
                )
            for offset, result in enumerate(results):
                outcome.results[index * size + offset] = result
            outcome.computed_chunks += 1
            outcome.retries += max(0, attempt)
            if self._store is not None:
                self._store.save(
                    index, [self._encode(result) for result in results]
                )
                self._maybe_chaos_kill(index)
            return None
        outcome.retries += attempt
        return DeadLetter(chunk=index, attempts=attempt, error=last_error)

    def _flush_state(self, outcome: ResilientOutcome, status: str) -> None:
        if self._store is None:
            return
        self._store.write_state(
            {
                "config": self._config,
                "total_chunks": outcome.chunks,
                "completed_chunks": (
                    outcome.reused_chunks + outcome.computed_chunks
                ),
                "dead_letters": [
                    {
                        "chunk": letter.chunk,
                        "attempts": letter.attempts,
                        "error": letter.error,
                    }
                    for letter in outcome.dead_letters
                ],
                "status": status,
            }
        )

    @staticmethod
    def _maybe_chaos_kill(index: int) -> None:
        """Honour the chaos harness's kill-after-chunk knob."""
        target = os.environ.get(CHAOS_KILL_ENV)
        if target is not None and index == int(target):
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover


# -- campaign glue ----------------------------------------------------


def encode_campaign_result(result: CampaignResult) -> Dict[str, Any]:
    """Lossless JSON form of one :class:`CampaignResult`."""
    return {
        "trials": [
            {
                "total": trial.total,
                "correct": trial.correct,
                "injected_faults": trial.injected_faults,
            }
            for trial in result.trials
        ]
    }


def decode_campaign_result(payload: Dict[str, Any]) -> CampaignResult:
    """Inverse of :func:`encode_campaign_result` (exact round-trip)."""
    return CampaignResult(
        trials=tuple(
            TrialResult(
                total=int(trial["total"]),
                correct=int(trial["correct"]),
                injected_faults=int(trial["injected_faults"]),
            )
            for trial in payload["trials"]
        )
    )


def resilient_campaign_map(
    items: Sequence[CampaignWorkItem],
    *,
    jobs: int = 1,
    runtime: ResilientRuntime,
    config: Dict[str, Any],
    clock: Callable[[], float] = time.monotonic,
    sleep_fn: Callable[[float], None] = time.sleep,
) -> ResilientOutcome:
    """Run campaign work items with checkpoints/deadline/breaker.

    The chunk runner is a :class:`CampaignExecutor` (serial for
    ``jobs=1``, process pool otherwise, with its own worker-death
    recovery inside each chunk), so a fully completed resilient run
    yields results identical to :func:`~repro.perf.executor.
    run_campaign_items` -- checkpointing and recovery never perturb
    the numbers.
    """
    executor = CampaignExecutor(
        jobs=jobs, chunk_timeout=runtime.chunk_timeout
    )
    runner = ResilientRunner(
        lambda _index, chunk: executor.run(chunk),
        runtime=runtime,
        config=config,
        kind="campaign-results",
        encode=encode_campaign_result,
        decode=decode_campaign_result,
        clock=clock,
        sleep_fn=sleep_fn,
    )
    return runner.run(items)


def resilience_note(outcome: ResilientOutcome) -> str:
    """One stderr-ready line summarising a run's recovery activity."""
    parts = [
        f"checkpoint[{outcome.run_key}]: "
        f"reused {outcome.reused_chunks}/{outcome.chunks} chunk(s), "
        f"computed {outcome.computed_chunks}"
    ]
    stats = outcome.checkpoint_stats
    if stats is not None and stats.corruptions:
        parts.append(f"quarantined {stats.corruptions} corrupt record(s)")
    if stats is not None and stats.write_errors:
        parts.append(
            f"degraded: {stats.write_errors} checkpoint write(s) failed "
            f"(disk full?)"
        )
    if outcome.retries:
        parts.append(f"{outcome.retries} retry(ies)")
    if outcome.dead_letters:
        parts.append(f"{len(outcome.dead_letters)} dead-lettered chunk(s)")
    if outcome.breaker_trips:
        parts.append(f"breaker tripped {outcome.breaker_trips}x")
    if outcome.deadline_hit:
        parts.append(f"deadline hit ({outcome.skipped_chunks} chunk(s) left)")
    return "; ".join(parts)
