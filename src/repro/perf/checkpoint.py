"""Content-addressed, crash-consistent campaign checkpoints.

A long sweep is a list of independent chunks; losing an hour of Monte
Carlo to a SIGKILL at minute 59 is an infrastructure failure the paper's
own thesis forbids.  :class:`CheckpointStore` makes chunk completion
durable:

* **Content-addressed.**  A store is keyed by the *run key* -- the
  canonical configuration hash (:func:`repro.obs.provenance.config_hash`)
  of everything that determines the run's results, including the chunk
  partitioning.  Two runs with equal configuration share checkpoints;
  any configuration change lands in a fresh directory, so a stale record
  can never be replayed into the wrong run.
* **Crash-consistent.**  Records are written via
  :func:`repro.ioutil.atomic_write_json` (temp + fsync + rename +
  directory fsync), so a record either exists completely or not at all.
* **Self-verifying.**  Every record embeds the schema version, the run
  key, its chunk index, a payload kind tag, and the SHA-256 of the
  canonical payload JSON.  :meth:`CheckpointStore.load` re-derives the
  digest and cross-checks every field; any mismatch -- truncation, a
  flipped bit, a stale schema, a foreign configuration -- quarantines
  the file (renamed ``*.corrupt``) and reports a miss, so corruption is
  always detected and transparently re-computed, never trusted.

Recovery state machine per chunk::

    absent ──────────────► MISS  (compute, then save)
    valid record ────────► HIT   (decode, skip compute)
    invalid record ──────► CORRUPT (quarantine, then as MISS)

Disk-full degrades gracefully: a failed save is counted and the run
continues without durability for that chunk -- results are never
perturbed by checkpointing trouble.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.ioutil import atomic_write_json, fsync_dir
from repro.obs import get_observer
from repro.obs.provenance import config_hash

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_SCHEMA_VERSION",
    "CHAOS_DISK_FULL_ENV",
    "CheckpointStats",
    "CheckpointStore",
    "payload_digest",
    "quarantined_files",
    "run_key_for",
    "scan_run_states",
]

#: Schema identifier stamped into every checkpoint record.
CHECKPOINT_SCHEMA = "repro.checkpoint"

#: Bumped on any backwards-incompatible record shape change; older
#: records are quarantined and re-computed rather than misread.
CHECKPOINT_SCHEMA_VERSION = 1

#: Chaos hook (test/harness only): once this many records have been
#: written, every further save raises ``ENOSPC`` -- a simulated full
#: disk.  Set by ``nanobox-repro chaos-exec --modes disk-full``.
CHAOS_DISK_FULL_ENV = "REPRO_CHAOS_DISK_FULL_AFTER"


def run_key_for(config: Mapping[str, Any]) -> str:
    """The store key for a run configuration (canonical JSON SHA-256)."""
    return config_hash(config)


def payload_digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of a chunk payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CheckpointStats:
    """Accounting for one store's lifetime.

    Attributes:
        hits: chunks served from a valid on-disk record.
        misses: chunks with no record (computed fresh).
        corruptions: invalid records detected, quarantined, re-computed.
        writes: records durably written.
        write_errors: failed save attempts (e.g. disk full) the run
            survived without durability.
    """

    hits: int = 0
    misses: int = 0
    corruptions: int = 0
    writes: int = 0
    write_errors: int = 0
    corrupt_reasons: List[str] = field(default_factory=list)


class CheckpointStore:
    """One run's durable chunk records under ``root/<run_key>/``.

    Args:
        root: checkpoint directory shared by many runs.
        run_key: canonical config hash naming this run's sub-directory
            (see :func:`run_key_for`).
        kind: payload kind tag recorded and verified per record, so a
            sweep checkpoint can never be decoded as, say, a lifecycle
            point list.
    """

    def __init__(
        self, root: Union[str, Path], run_key: str, kind: str = "chunk"
    ) -> None:
        if not run_key:
            raise ValueError("run_key must be non-empty")
        self._root = Path(root)
        self._run_key = run_key
        self._kind = kind
        self._dir = self._root / run_key
        self._stats = CheckpointStats()
        self._disk_full = False

    @property
    def run_key(self) -> str:
        return self._run_key

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def stats(self) -> CheckpointStats:
        return self._stats

    def path_for(self, index: int) -> Path:
        """The record path for one chunk index."""
        if index < 0:
            raise ValueError(f"chunk index must be >= 0, got {index}")
        return self._dir / f"chunk_{index:06d}.json"

    def completed_indices(self) -> List[int]:
        """Chunk indices with a record on disk (validity not yet checked)."""
        if not self._dir.is_dir():
            return []
        indices: List[int] = []
        for path in self._dir.glob("chunk_*.json"):
            stem = path.stem[len("chunk_"):]
            if stem.isdigit():
                indices.append(int(stem))
        return sorted(indices)

    def write_state(self, state: Mapping[str, Any]) -> None:
        """Persist an informational ``state.json`` next to the records.

        Best-effort (shares the disk-full degradation with saves): the
        state document is for humans and resume reporting, never needed
        for correctness.
        """
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
            document = dict(state)
            document.setdefault("schema", f"{CHECKPOINT_SCHEMA}.state")
            document.setdefault("schema_version", CHECKPOINT_SCHEMA_VERSION)
            document.setdefault("run_key", self._run_key)
            atomic_write_json(self._dir / "state.json", document)
        except OSError:
            pass

    def save(self, index: int, payload: Any) -> bool:
        """Durably record one completed chunk; False when degraded.

        Raises nothing for I/O trouble: a full disk (real, or injected
        via :data:`CHAOS_DISK_FULL_ENV`) is counted in
        ``stats.write_errors`` and the caller simply continues without
        durability for this chunk.  Unserialisable payloads are a
        programming error and do raise.
        """
        obs = get_observer()
        record = {
            "schema": CHECKPOINT_SCHEMA,
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "run_key": self._run_key,
            "chunk_index": index,
            "kind": self._kind,
            "payload_sha256": payload_digest(payload),
            "payload": payload,
        }
        try:
            self._maybe_inject_disk_full()
            self._dir.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self.path_for(index), record)
        except (TypeError, ValueError):
            raise  # unserialisable payload: a bug, not an I/O condition
        except OSError as exc:
            self._stats.write_errors += 1
            self._disk_full = getattr(exc, "errno", None) == errno.ENOSPC
            obs.metrics.counter("checkpoint.write_errors").inc()
            if obs.enabled:
                obs.trace.emit(
                    "checkpoint_write_failed",
                    source="checkpoint",
                    chunk=index,
                    error=repr(exc),
                )
            return False
        self._stats.writes += 1
        obs.metrics.counter("checkpoint.writes").inc()
        if obs.enabled:
            obs.trace.emit(
                "checkpoint_saved", source="checkpoint", chunk=index
            )
        return True

    def load(self, index: int) -> Tuple[Optional[Any], bool]:
        """Fetch one chunk payload: ``(payload, hit)``.

        Returns ``(None, False)`` on a miss.  A present-but-invalid
        record -- truncated JSON, flipped payload bits, stale schema
        version, foreign run key, wrong index or kind -- is quarantined
        (renamed ``*.corrupt``) and reported as a miss so the caller
        re-computes; the quarantined file is kept for post-mortems.
        """
        obs = get_observer()
        path = self.path_for(index)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self._stats.misses += 1
            obs.metrics.counter("checkpoint.misses").inc()
            return None, False
        except OSError as exc:
            self._quarantine(path, index, f"unreadable: {exc!r}", obs)
            return None, False
        reason = self._validate(raw, index)
        if reason is not None:
            self._quarantine(path, index, reason, obs)
            return None, False
        payload = json.loads(raw)["payload"]
        self._stats.hits += 1
        obs.metrics.counter("checkpoint.hits").inc()
        if obs.enabled:
            obs.trace.emit(
                "checkpoint_hit", source="checkpoint", chunk=index
            )
        return payload, True

    def _validate(self, raw: str, index: int) -> Optional[str]:
        """The reason a record is invalid, or ``None`` when it is good."""
        try:
            record = json.loads(raw)
        except json.JSONDecodeError as exc:
            return f"undecodable (truncated?): {exc.msg}"
        if not isinstance(record, dict):
            return "not a record object"
        if record.get("schema") != CHECKPOINT_SCHEMA:
            return f"foreign schema {record.get('schema')!r}"
        if record.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            return (
                f"stale schema version {record.get('schema_version')!r} "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        if record.get("run_key") != self._run_key:
            return (
                f"config hash mismatch: record {record.get('run_key')!r} "
                f"vs run {self._run_key!r}"
            )
        if record.get("chunk_index") != index:
            return (
                f"chunk index mismatch: record {record.get('chunk_index')!r} "
                f"vs expected {index}"
            )
        if record.get("kind") != self._kind:
            return (
                f"payload kind mismatch: record {record.get('kind')!r} "
                f"vs expected {self._kind!r}"
            )
        if "payload" not in record:
            return "missing payload"
        if record.get("payload_sha256") != payload_digest(record["payload"]):
            return "payload integrity failure (bit flip?)"
        return None

    def _quarantine(self, path: Path, index: int, reason: str, obs) -> None:
        """Move an invalid record aside and account for it as corrupt."""
        target = path.with_suffix(path.suffix + ".corrupt")
        serial = 0
        while target.exists():
            serial += 1
            target = path.with_suffix(path.suffix + f".corrupt{serial}")
        try:
            os.replace(str(path), str(target))
            fsync_dir(path.parent)
        except OSError:  # pragma: no cover - racing deletion
            pass
        self._stats.corruptions += 1
        self._stats.misses += 1
        self._stats.corrupt_reasons.append(f"chunk {index}: {reason}")
        obs.metrics.counter("checkpoint.corruptions").inc()
        obs.metrics.counter("checkpoint.misses").inc()
        if obs.enabled:
            obs.trace.emit(
                "checkpoint_corrupt",
                source="checkpoint",
                chunk=index,
                reason=reason,
                quarantined=target.name,
            )

    def _maybe_inject_disk_full(self) -> None:
        """Honour the chaos harness's simulated-disk-full knob."""
        limit = os.environ.get(CHAOS_DISK_FULL_ENV)
        if limit is not None and self._stats.writes >= int(limit):
            raise OSError(errno.ENOSPC, "injected disk full (chaos)")


def quarantined_files(root: Union[str, Path]) -> List[Path]:
    """Every quarantined (``*.corrupt*``) record under a checkpoint root.

    Quarantine is how both :class:`CheckpointStore` and the service
    result cache preserve invalid records for post-mortems instead of
    trusting or deleting them; this census is what ``--obs-report``
    surfaces so operators notice the pile growing.  Sorted for
    deterministic reporting; an absent root is simply empty.
    """
    base = Path(root)
    if not base.is_dir():
        return []
    return sorted(
        path
        for path in base.rglob("*.corrupt*")
        if path.is_file() and ".corrupt" in path.name
    )


def scan_run_states(root: Union[str, Path]) -> List[Dict[str, Any]]:
    """Live progress summaries, one per run directory under ``root``.

    Each summary combines the run's informational ``state.json`` (when
    present and readable) with ground truth counted from disk: chunk
    records present now (live progress while a writer is mid-run, since
    the final state document only lands at flush) and quarantined
    files.  Read-only and crash-tolerant -- a torn ``state.json`` or a
    mid-rename record never raises, it just degrades the summary.
    """
    base = Path(root)
    if not base.is_dir():
        return []
    summaries: List[Dict[str, Any]] = []
    for run_dir in sorted(p for p in base.iterdir() if p.is_dir()):
        chunk_records = len(list(run_dir.glob("chunk_*.json")))
        corrupt = len(
            [p for p in run_dir.iterdir() if ".corrupt" in p.name]
        )
        summary: Dict[str, Any] = {
            "run_key": run_dir.name,
            "completed_chunks": chunk_records,
            "total_chunks": None,
            "status": None,
            "corrupt_files": corrupt,
        }
        try:
            state = json.loads((run_dir / "state.json").read_text())
        except (OSError, json.JSONDecodeError):
            state = None
        if isinstance(state, dict):
            summary["status"] = state.get("status")
            total = state.get("total_chunks")
            if isinstance(total, int):
                summary["total_chunks"] = total
            done = state.get("completed_chunks")
            if isinstance(done, int):
                summary["completed_chunks"] = max(chunk_records, done)
        summaries.append(summary)
    return summaries
