"""Picklable build recipes for campaign work items.

A :class:`~repro.perf.executor.CampaignWorkItem` crosses a process
boundary, but the compute units themselves (LUT object graphs, gate
netlists) and the mask policies are heavyweight and not worth pickling.
Instead a work item carries these small frozen *specs*, and each worker
process rebuilds the real objects from them.  Construction is
deterministic, so a spec builds the same unit in every process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.mask import (
    BernoulliMask,
    BurstMask,
    ExactFractionMask,
    FixedCountMask,
    MaskPolicy,
)
from repro.lut.coded import DEFAULT_BLOCK_SIZE

_ALU_KINDS = ("variant", "simplex", "space")
_POLICY_KINDS = ("exact", "bernoulli", "burst", "fixed")


@dataclass(frozen=True)
class ALUSpec:
    """Recipe for one fault-maskable compute unit.

    Three kinds cover every unit the experiment layer sweeps:

    * ``"variant"`` -- a Table 2 variant by paper name (``aluss``, ...);
    * ``"simplex"`` -- a bare :class:`~repro.alu.nanobox.NanoBoxALU` with
      an arbitrary coding scheme and Hamming block size (the ablation
      studies' single-module units);
    * ``"space"`` -- a space-redundant NanoBox triple with an
      independently chosen voter construction.
    """

    kind: str
    name: str = ""
    scheme: str = "none"
    block_size: int = DEFAULT_BLOCK_SIZE
    voter: str = "tmr"
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _ALU_KINDS:
            raise ValueError(
                f"unknown ALU spec kind {self.kind!r}; valid: {_ALU_KINDS}"
            )
        if self.kind == "variant" and not self.name:
            raise ValueError("variant spec requires a variant name")

    @classmethod
    def variant(cls, name: str) -> "ALUSpec":
        """A Table 2 variant by its paper name."""
        return cls(kind="variant", name=name)

    @classmethod
    def simplex(
        cls,
        scheme: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        label: str = "",
    ) -> "ALUSpec":
        """A single NanoBox module with no module-level redundancy."""
        return cls(
            kind="simplex", scheme=scheme, block_size=block_size, label=label
        )

    @classmethod
    def space(cls, scheme: str, voter: str, label: str = "") -> "ALUSpec":
        """Three NanoBox copies behind a voter of the given construction."""
        return cls(kind="space", scheme=scheme, voter=voter, label=label)

    def build(self):
        """Construct the unit (imports deferred for worker startup)."""
        from repro.alu.nanobox import NanoBoxALU
        from repro.alu.redundancy import SimplexALU, SpaceRedundantALU
        from repro.alu.variants import build_alu
        from repro.alu.voters import make_voter

        if self.kind == "variant":
            return build_alu(self.name)
        if self.kind == "simplex":
            return SimplexALU(
                NanoBoxALU(scheme=self.scheme, block_size=self.block_size),
                name=self.label or f"simplex[{self.scheme}]",
            )
        return SpaceRedundantALU(
            lambda: NanoBoxALU(scheme=self.scheme, block_size=self.block_size),
            make_voter(self.voter),
            name=self.label or f"space[{self.scheme}/{self.voter}]",
        )


@dataclass(frozen=True)
class PolicySpec:
    """Recipe for one mask policy.

    ``value`` is the fraction/probability for the stochastic kinds and
    the (integral) site count for ``"fixed"``.
    """

    kind: str
    value: float
    burst_length: int = 4

    def __post_init__(self) -> None:
        if self.kind not in _POLICY_KINDS:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; valid: {_POLICY_KINDS}"
            )

    @classmethod
    def exact(cls, fraction: float) -> "PolicySpec":
        """The paper's exact-fraction injection semantics."""
        return cls(kind="exact", value=fraction)

    @classmethod
    def bernoulli(cls, probability: float) -> "PolicySpec":
        """Independent per-site flips."""
        return cls(kind="bernoulli", value=probability)

    def build(self) -> MaskPolicy:
        if self.kind == "exact":
            return ExactFractionMask(self.value)
        if self.kind == "bernoulli":
            return BernoulliMask(self.value)
        if self.kind == "burst":
            return BurstMask(self.value, burst_length=self.burst_length)
        return FixedCountMask(int(self.value))
