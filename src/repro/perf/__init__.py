"""Parallel campaign execution.

Fault-injection campaigns are embarrassingly parallel across (variant,
fault percentage) cells: each cell is an independent Monte Carlo suite
with its own seed-derived streams.  This package turns a sweep into a
list of picklable :class:`~repro.perf.executor.CampaignWorkItem`\\ s and
fans them out over a process pool with a deterministic merge order, so a
parallel run's report is byte-identical to a serial one.
"""

from repro.perf.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    CampaignWorkItem,
    ExecutorStats,
    run_campaign_items,
)
from repro.perf.spec import ALUSpec, PolicySpec

__all__ = [
    "ALUSpec",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignWorkItem",
    "ExecutorStats",
    "PolicySpec",
    "run_campaign_items",
]
