"""Parallel campaign execution.

Fault-injection campaigns are embarrassingly parallel across (variant,
fault percentage) cells: each cell is an independent Monte Carlo suite
with its own seed-derived streams.  This package turns a sweep into a
list of picklable :class:`~repro.perf.executor.CampaignWorkItem`\\ s and
fans them out over a process pool with a deterministic merge order, so a
parallel run's report is byte-identical to a serial one.
"""

from repro.perf.checkpoint import CheckpointStats, CheckpointStore, run_key_for
from repro.perf.executor import (
    CampaignExecutionError,
    CampaignExecutor,
    CampaignWorkItem,
    ExecutorStats,
    run_campaign_items,
)
from repro.perf.resilient import (
    BackoffPolicy,
    DeadLetter,
    ResilientOutcome,
    ResilientRunner,
    ResilientRuntime,
    resilience_note,
    resilient_campaign_map,
)
from repro.perf.spec import ALUSpec, PolicySpec

__all__ = [
    "ALUSpec",
    "BackoffPolicy",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignWorkItem",
    "CheckpointStats",
    "CheckpointStore",
    "DeadLetter",
    "ExecutorStats",
    "PolicySpec",
    "ResilientOutcome",
    "ResilientRunner",
    "ResilientRuntime",
    "resilience_note",
    "resilient_campaign_map",
    "run_campaign_items",
    "run_key_for",
]
