"""Process-pool fan-out of fault-injection campaign cells.

One :class:`CampaignWorkItem` is one (compute unit, mask policy) suite
run -- a plotted figure point or an ablation cell.  Items are
independent by construction: every trial stream is derived from the
item's own ``(seed, workload, trial)`` entropy, never from execution
order, so the executor may run them in any arrangement and the merged
results are identical to a serial sweep.

Determinism contract: :meth:`CampaignExecutor.run` returns results in
*input order*, and workers hold no mutable shared state, so a report
assembled from a parallel run is byte-for-byte identical to a serial
one -- even when a worker process dies mid-campaign.  CI asserts this.

Fault tolerance: long campaigns should survive a worker being OOM-killed
or segfaulting.  Work is submitted in indexed chunks; when the pool
breaks (:class:`BrokenProcessPool`) or a chunk exceeds its timeout, the
executor rebuilds the pool and resubmits only the unfinished chunks,
bounded by ``max_retries`` attempts per chunk.  Because items are pure
functions of their specs, a re-run chunk yields the same results, so
recovery never perturbs the output.  Genuine exceptions raised *by* an
item (a bad spec, say) are deterministic and propagate immediately
rather than burning retries.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.campaign import CampaignResult, FaultCampaign
from repro.obs import Observer, get_observer, observing
from repro.perf.spec import ALUSpec, PolicySpec
from repro.workloads.bitmap import Bitmap, gradient


@dataclass(frozen=True)
class CampaignWorkItem:
    """One independently runnable campaign cell.

    Attributes:
        alu: recipe for the compute unit under test.
        policy: recipe for the fault-mask policy.
        trials_per_workload: trials pooled per workload (paper: 5).
        seed: base campaign seed.
        bitmap: workload image; ``None`` selects the paper's default
            8x8 gradient.  Leave it ``None`` unless the sweep really
            uses a custom image: the item then ships as pure spec --
            a few hundred bytes regardless of trial count or unit
            size -- and the worker rebuilds the default locally.
        batched: evaluate through the vectorized engine (bit-identical
            to scalar; significantly faster for LUT variants).
        backend: evaluation tier (``scalar``/``batched``/``compiled``/
            ``auto``); ``None`` defers to the legacy ``batched`` flag.
            Results are bit-identical on every tier.
    """

    alu: ALUSpec
    policy: PolicySpec
    trials_per_workload: int = 5
    seed: int = 2004
    bitmap: Optional[Bitmap] = field(default=None, compare=False)
    batched: bool = True
    backend: Optional[str] = None


@dataclass
class ExecutorStats:
    """Accounting for one :meth:`CampaignExecutor.run_with_stats` call.

    Attributes:
        chunks: pool tasks submitted on the first attempt (0 when the
            run was serial).
        retries: chunk resubmissions after a broken pool or timeout.
        pool_rebuilds: times the process pool was torn down and
            recreated during recovery.
    """

    chunks: int = 0
    retries: int = 0
    pool_rebuilds: int = 0


class CampaignExecutionError(RuntimeError):
    """A chunk kept failing after exhausting its retry budget."""


#: Per-worker-process cache: unit + evaluation engines, keyed by the
#: (hashable, frozen) ALU spec.  A sweep chunk runs dozens of items over
#: a handful of unit variants; without this every item would re-lower
#: and re-warm its compiled engine, which costs more than evaluation.
#: Engines are stateless across calls, so sharing never perturbs results.
_WORKER_UNITS: Dict[ALUSpec, Tuple[object, Dict[str, object]]] = {}


def _cached_unit(spec: ALUSpec) -> Tuple[object, Dict[str, object]]:
    entry = _WORKER_UNITS.get(spec)
    if entry is None:
        entry = (spec.build(), {})
        _WORKER_UNITS[spec] = entry
    return entry


def _execute_item(item: CampaignWorkItem) -> CampaignResult:
    """Worker entry point: rebuild the cell from its specs and run it.

    Module-level (not a closure) so it pickles for the process pool.
    Items arrive as pure specs (seed + recipes, no arrays) unless a
    custom bitmap rides along; the unit and its batched/compiled
    engines come from the per-process cache.
    """
    from repro.workloads.imaging import paper_workloads

    obs = get_observer()
    if item.bitmap is None:
        bmp = gradient(8, 8)
        obs.metrics.counter("kernel.items_by_seed").inc()
    else:
        bmp = item.bitmap
        obs.metrics.counter("kernel.items_with_array").inc()
    unit, engines = _cached_unit(item.alu)
    campaign = FaultCampaign(unit, item.policy.build(), seed=item.seed)
    campaign.use_engines(**engines)
    result = campaign.run_workload_suite(
        paper_workloads(bmp),
        trials_per_workload=item.trials_per_workload,
        batched=item.batched,
        backend=item.backend,
    )
    engines.update(campaign.built_engines())
    return result


#: Chaos hook (test/harness only): the first worker to claim this
#: sentinel file wedges for ``REPRO_CHAOS_HANG_SECS`` (default 600s),
#: simulating a deadlocked/swapping worker; later attempts -- including
#: the resubmission after the executor's timeout recovery -- run
#: normally.  Set by ``nanobox-repro chaos-exec --modes hang``.
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_SENTINEL"


def _maybe_chaos_hang() -> None:
    """Honour the chaos harness's hung-worker knob (no-op normally)."""
    sentinel = os.environ.get(CHAOS_HANG_ENV)
    if sentinel is None:
        return
    try:
        open(sentinel, "x").close()
    except OSError:
        return  # someone already hung once; run normally
    time.sleep(float(os.environ.get("REPRO_CHAOS_HANG_SECS", "600")))


def _execute_chunk(
    items: Sequence[CampaignWorkItem],
) -> List[CampaignResult]:
    """Worker entry point for one indexed chunk of items."""
    _maybe_chaos_hang()
    return [_execute_item(item) for item in items]


def _execute_chunk_observed(
    items: Sequence[CampaignWorkItem],
) -> Tuple[List[CampaignResult], Dict[str, object], Tuple[Dict[str, object], ...]]:
    """Observed worker entry point: results + the worker's observability.

    Used instead of :func:`_execute_chunk` when the parent process has an
    observer installed.  The worker records into its own fresh observer
    (worker processes start at the null observer) and ships the metrics
    snapshot and trace records home with the results; the parent merges
    them.  The campaign results themselves are identical either way --
    observability never perturbs them.
    """
    worker_obs = Observer()
    with observing(worker_obs):
        results = _execute_chunk(items)
    return (
        results,
        worker_obs.metrics.snapshot(),
        worker_obs.trace.to_records(),
    )


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on its workers.

    A worker that timed out may be wedged (deadlocked, swapping);
    ``shutdown`` alone would leave it alive and block interpreter exit,
    so any survivors are terminated outright.
    """
    # Snapshot first: shutdown() drops the executor's process table.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except (AttributeError, OSError):  # already reaped
            pass


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this machine (its CPU count)."""
    return os.cpu_count() or 1


class CampaignExecutor:
    """Runs campaign work items, serially or across a process pool.

    Args:
        jobs: worker process count.  ``1`` (the default) runs inline in
            the calling process with no pool at all -- identical to the
            pre-parallel behaviour, and what tests use.
        chunk_size: items per pool task; defaults to spreading the list
            over roughly four waves per worker, which amortises pickling
            without starving the pool on heterogeneous item costs.
        max_retries: resubmission budget per chunk when the pool breaks
            under it or its timeout elapses.
        chunk_timeout: seconds to wait for one chunk before declaring
            its worker hung and recycling the pool; ``None`` waits
            forever.
    """

    def __init__(
        self,
        jobs: int = 1,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        chunk_timeout: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive, got {chunk_timeout}"
            )
        self._jobs = jobs
        self._chunk_size = chunk_size
        self._max_retries = max_retries
        self._chunk_timeout = chunk_timeout
        self._chunk_fn: Callable[
            [Sequence[CampaignWorkItem]], List[CampaignResult]
        ] = _execute_chunk
        self._last_stats = ExecutorStats()

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def last_stats(self) -> ExecutorStats:
        """Accounting for the most recent :meth:`run` call."""
        return self._last_stats

    def _chunksize_for(self, n_items: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        return max(1, n_items // (self._jobs * 4))

    def _chunked(
        self, items: List[CampaignWorkItem]
    ) -> List[List[CampaignWorkItem]]:
        size = self._chunksize_for(len(items))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def run(self, items: Sequence[CampaignWorkItem]) -> List[CampaignResult]:
        """Execute every item; results are in input order, always."""
        results, _ = self.run_with_stats(items)
        return results

    def run_with_stats(
        self, items: Sequence[CampaignWorkItem]
    ) -> Tuple[List[CampaignResult], ExecutorStats]:
        """Execute every item and report retry/rebuild accounting."""
        obs = get_observer()
        with obs.metrics.time("executor.run"):
            results, stats = self._run_with_stats(items, obs)
        obs.metrics.counter("executor.items").inc(len(results))
        obs.metrics.counter("executor.chunks").inc(stats.chunks)
        obs.metrics.counter("executor.retries").inc(stats.retries)
        obs.metrics.counter("executor.pool_rebuilds").inc(stats.pool_rebuilds)
        return results, stats

    def _run_with_stats(
        self, items: Sequence[CampaignWorkItem], obs: Observer
    ) -> Tuple[List[CampaignResult], ExecutorStats]:
        items = list(items)
        stats = ExecutorStats()
        self._last_stats = stats
        if self._jobs == 1 or len(items) <= 1:
            # Inline: items run under the caller's observer directly.
            return [_execute_item(item) for item in items], stats
        # Only the stock chunk fn has an observed twin; a monkeypatched
        # chunk fn (the crash-injection tests) runs unobserved.
        observed = obs.enabled and self._chunk_fn is _execute_chunk
        chunk_fn = _execute_chunk_observed if observed else self._chunk_fn
        chunks = self._chunked(items)
        stats.chunks = len(chunks)
        workers = min(self._jobs, len(chunks))
        completed: Dict[int, List[CampaignResult]] = {}
        attempts: Dict[int, int] = {idx: 0 for idx in range(len(chunks))}

        def absorb(idx: int, payload) -> None:
            """Record one finished chunk, folding in worker observability."""
            if observed:
                results, metrics_snapshot, trace_records = payload
                obs.metrics.merge_snapshot(metrics_snapshot)
                obs.trace.extend(trace_records, source_prefix=f"chunk{idx}")
                completed[idx] = results
            else:
                completed[idx] = payload

        # Boxed so the loop can swap in a rebuilt pool and the finally
        # clause still tears down the *current* one.
        pool_ref = [ProcessPoolExecutor(max_workers=workers)]
        try:
            self._submission_loop(
                pool_ref, chunks, chunk_fn, completed, attempts,
                absorb, stats, workers, obs,
            )
        except KeyboardInterrupt:
            # Ctrl-C mid-campaign: cancel whatever has not started, kill
            # the workers outright (no zombies, no hang on join), then
            # re-raise so the caller -- e.g. the resilient runner, which
            # flushes a final checkpoint -- sees the real interrupt.
            obs.metrics.counter("executor.interrupts").inc()
            if obs.enabled:
                obs.trace.emit(
                    "run_interrupted",
                    source="executor",
                    completed_chunks=len(completed),
                    total_chunks=len(chunks),
                )
            raise
        finally:
            _discard_pool(pool_ref[0])
        results: List[CampaignResult] = []
        for idx in range(len(chunks)):
            results.extend(completed[idx])
        return results, stats

    def _submission_loop(
        self,
        pool_ref: List[ProcessPoolExecutor],
        chunks: List[List[CampaignWorkItem]],
        chunk_fn,
        completed: Dict[int, List[CampaignResult]],
        attempts: Dict[int, int],
        absorb,
        stats: ExecutorStats,
        workers: int,
        obs: Observer,
    ) -> None:
        """Submit/collect until every chunk lands (or a retry budget dies)."""
        pool = pool_ref[0]
        while len(completed) < len(chunks):
            pending = {
                pool.submit(chunk_fn, chunks[idx]): idx
                for idx in range(len(chunks))
                if idx not in completed
            }
            pool_dirty = False
            for future, idx in pending.items():
                if pool_dirty:
                    # A broken pool fails every sibling future too;
                    # collect what finished, resubmit the rest.
                    if future.done() and future.exception() is None:
                        absorb(idx, future.result())
                    continue
                try:
                    absorb(idx, future.result(timeout=self._chunk_timeout))
                except (BrokenProcessPool, FutureTimeout) as exc:
                    attempts[idx] += 1
                    stats.retries += 1
                    if obs.enabled:
                        obs.trace.emit(
                            "chunk_retried",
                            source="executor",
                            chunk=idx,
                            attempt=attempts[idx],
                            error=repr(exc),
                        )
                    if attempts[idx] > self._max_retries:
                        raise CampaignExecutionError(
                            f"chunk {idx} failed "
                            f"{attempts[idx]} times: {exc!r}"
                        ) from exc
                    pool_dirty = True
            if pool_dirty:
                # Recycle the pool: a broken one is unusable and a
                # timed-out worker may still be wedged inside it.
                _discard_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                pool_ref[0] = pool
                stats.pool_rebuilds += 1


def run_campaign_items(
    items: Sequence[CampaignWorkItem], jobs: int = 1
) -> List[CampaignResult]:
    """Convenience wrapper: one-shot executor run.

    Recovery is silent in the results (they are identical either way),
    so any worker-death retries are noted on stderr for the CLI user.
    """
    executor = CampaignExecutor(jobs=jobs)
    results, stats = executor.run_with_stats(items)
    if stats.retries:
        print(
            f"campaign executor: recovered from {stats.retries} failed "
            f"chunk attempt(s) across {stats.pool_rebuilds} pool "
            f"rebuild(s); results are unaffected",
            file=sys.stderr,
        )
    return results
