"""Process-pool fan-out of fault-injection campaign cells.

One :class:`CampaignWorkItem` is one (compute unit, mask policy) suite
run -- a plotted figure point or an ablation cell.  Items are
independent by construction: every trial stream is derived from the
item's own ``(seed, workload, trial)`` entropy, never from execution
order, so the executor may run them in any arrangement and the merged
results are identical to a serial sweep.

Determinism contract: :meth:`CampaignExecutor.run` returns results in
*input order* (``ProcessPoolExecutor.map`` preserves it), and workers
hold no mutable shared state, so a report assembled from a parallel run
is byte-for-byte identical to a serial one.  CI asserts this.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.faults.campaign import CampaignResult, FaultCampaign
from repro.perf.spec import ALUSpec, PolicySpec
from repro.workloads.bitmap import Bitmap, gradient


@dataclass(frozen=True)
class CampaignWorkItem:
    """One independently runnable campaign cell.

    Attributes:
        alu: recipe for the compute unit under test.
        policy: recipe for the fault-mask policy.
        trials_per_workload: trials pooled per workload (paper: 5).
        seed: base campaign seed.
        bitmap: workload image; ``None`` selects the paper's default
            8x8 gradient.
        batched: evaluate through the vectorized engine (bit-identical
            to scalar; significantly faster for LUT variants).
    """

    alu: ALUSpec
    policy: PolicySpec
    trials_per_workload: int = 5
    seed: int = 2004
    bitmap: Optional[Bitmap] = field(default=None, compare=False)
    batched: bool = True


def _execute_item(item: CampaignWorkItem) -> CampaignResult:
    """Worker entry point: rebuild the cell from its specs and run it.

    Module-level (not a closure) so it pickles for the process pool.
    """
    from repro.workloads.imaging import paper_workloads

    bmp = item.bitmap if item.bitmap is not None else gradient(8, 8)
    campaign = FaultCampaign(
        item.alu.build(), item.policy.build(), seed=item.seed
    )
    return campaign.run_workload_suite(
        paper_workloads(bmp),
        trials_per_workload=item.trials_per_workload,
        batched=item.batched,
    )


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this machine (its CPU count)."""
    return os.cpu_count() or 1


class CampaignExecutor:
    """Runs campaign work items, serially or across a process pool.

    Args:
        jobs: worker process count.  ``1`` (the default) runs inline in
            the calling process with no pool at all -- identical to the
            pre-parallel behaviour, and what tests use.
        chunk_size: items per pool task; defaults to spreading the list
            over roughly four waves per worker, which amortises pickling
            without starving the pool on heterogeneous item costs.
    """

    def __init__(self, jobs: int = 1, chunk_size: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._jobs = jobs
        self._chunk_size = chunk_size

    @property
    def jobs(self) -> int:
        return self._jobs

    def _chunksize_for(self, n_items: int) -> int:
        if self._chunk_size is not None:
            return self._chunk_size
        return max(1, n_items // (self._jobs * 4))

    def run(self, items: Sequence[CampaignWorkItem]) -> List[CampaignResult]:
        """Execute every item; results are in input order, always."""
        items = list(items)
        if self._jobs == 1 or len(items) <= 1:
            return [_execute_item(item) for item in items]
        workers = min(self._jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    _execute_item,
                    items,
                    chunksize=self._chunksize_for(len(items)),
                )
            )


def run_campaign_items(
    items: Sequence[CampaignWorkItem], jobs: int = 1
) -> List[CampaignResult]:
    """Convenience wrapper: one-shot executor run."""
    return CampaignExecutor(jobs=jobs).run(items)
