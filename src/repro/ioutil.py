"""Crash-consistent file writes shared by every durable-artifact layer.

The paper's thesis -- reliable systems out of unreliable parts -- applies
to our own infrastructure too: a benchmark artifact, replay manifest, or
campaign checkpoint that a crash leaves half-written is worse than one
that was never written, because downstream consumers (``bench compare``,
``replay``, checkpoint resume) would read a torn document and either
choke or, worse, trust it.  Every durable write in this repository
therefore goes through one primitive:

    write to a temp file in the same directory
    -> flush + fsync the file
    -> atomically rename over the destination
    -> fsync the directory entry

so at every instant the destination path holds either the complete old
contents or the complete new contents, never a mixture.  The rename is
atomic on POSIX and same-volume by construction (the temp file lives
next to its destination); the directory fsync makes the rename itself
durable across power loss.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_dir",
]


def fsync_dir(directory: Union[str, Path]) -> None:
    """Flush a directory entry to stable storage (best-effort).

    Needed after a rename so the new directory entry survives power
    loss.  Platforms that cannot open directories (Windows) or exotic
    filesystems that refuse to fsync them degrade silently: the write
    is still atomic with respect to process crashes either way.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename).

    On any failure the destination is untouched and the temp file is
    removed; the caller sees the original exception.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, str(path))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(
    path: Union[str, Path],
    document: Any,
    indent: int = 2,
    sort_keys: bool = True,
) -> None:
    """Atomically replace ``path`` with a JSON rendering of ``document``.

    Serialisation happens *before* the temp file is opened, so an
    unserialisable document never disturbs the destination or leaves a
    temp file behind.
    """
    text = json.dumps(document, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_text(path, text)
