"""Exact-replay manifests for experiment-running CLI commands.

A figure in the paper is five trials per point; a figure in this
repository is one CLI invocation.  ``--manifest out.json`` on ``sweep``,
``grid``, ``chaos``, ``lifecycle`` (and ``report``) records everything
needed to re-run that invocation and *prove* it reproduced:

* the exact argv (minus the ``--manifest`` flag itself),
* the SHA-256 of the primary stdout the run produced,
* a :func:`~repro.obs.provenance.collect_provenance` block.

``nanobox-repro replay out.json`` re-executes the recorded argv, prints
the regenerated output, and exits non-zero unless it is byte-for-byte
identical to the recorded digest.  Because every experiment path is
seed-deterministic (a property the executor and batched kernels already
pin in CI), a manifest replayed on the same code revision must match;
a digest mismatch means the experiment pipeline changed behaviour.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.provenance import collect_provenance

__all__ = [
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "load_manifest",
    "output_digest",
    "strip_manifest_flag",
    "write_manifest",
]

#: Schema identifier stamped into every manifest.
MANIFEST_SCHEMA = "repro.manifest"

#: Bumped on any backwards-incompatible manifest shape change.
MANIFEST_SCHEMA_VERSION = 1

_REQUIRED_KEYS = (
    "schema",
    "schema_version",
    "command",
    "argv",
    "output_sha256",
    "output_bytes",
    "exit_status",
    "provenance",
)


def output_digest(text: str) -> str:
    """SHA-256 hex digest of the run's stdout (UTF-8 bytes)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def strip_manifest_flag(argv: Sequence[str]) -> List[str]:
    """``argv`` with ``--manifest PATH`` / ``--manifest=PATH`` removed.

    The recorded argv must not re-write the manifest when replayed.
    """
    stripped: List[str] = []
    skip_next = False
    for token in argv:
        if skip_next:
            skip_next = False
            continue
        if token == "--manifest":
            skip_next = True
            continue
        if token.startswith("--manifest="):
            continue
        stripped.append(token)
    return stripped


def build_manifest(
    command: str,
    argv: Sequence[str],
    output_text: str,
    exit_status: int,
    seed: Optional[int] = None,
    provenance: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one replay manifest (JSON-safe dict).

    Args:
        command: the subcommand name (``"sweep"``, ``"grid"``, ...).
        argv: the full CLI argv of the run; the manifest flag is
            stripped before recording.
        output_text: the primary stdout the command produced.
        exit_status: the command's exit status.
        seed: the run's seed, recorded into provenance.
        provenance: pre-collected block (default: collect now).
    """
    recorded = strip_manifest_flag(argv)
    if provenance is None:
        provenance = collect_provenance(
            seed=seed, config={"command": command, "argv": recorded}
        )
    return {
        "schema": MANIFEST_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": recorded,
        "output_sha256": output_digest(output_text),
        "output_bytes": len(output_text.encode("utf-8")),
        "exit_status": int(exit_status),
        "provenance": dict(provenance),
    }


def write_manifest(manifest: Mapping[str, Any], path: Union[str, Path]) -> None:
    """Persist a manifest as indented, key-sorted JSON (atomically:
    a crash mid-write can never leave a torn manifest for ``replay``)."""
    from repro.ioutil import atomic_write_json

    atomic_write_json(path, dict(manifest))


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and schema-check a replay manifest.

    Raises:
        ValueError: when the document is not a version-1 manifest or is
            missing required keys.
    """
    with open(path) as handle:
        manifest = json.load(handle)
    if (
        not isinstance(manifest, dict)
        or manifest.get("schema") != MANIFEST_SCHEMA
    ):
        raise ValueError(f"{path}: not a {MANIFEST_SCHEMA} document")
    if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {manifest.get('schema_version')!r} "
            f"unsupported (expected {MANIFEST_SCHEMA_VERSION})"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ValueError(f"{path}: missing required keys {missing}")
    return manifest
