"""Structured event tracing with ring-buffer retention and JSONL export.

Where :mod:`repro.obs.metrics` answers "how many, how long",
:class:`TraceLog` answers "what happened, in what order": a typed event
bus that the campaign, executor, grid, and lifecycle layers emit into --
``trial_start``/``trial_end``, ``fault_injected``, ``packet_retransmit``,
``cell_quarantined``, ``probe_result``, ``chunk_retried``, and friends.

Events live in a bounded ring buffer (old events are evicted, never
errors), carry a per-log monotone sequence number (so events from one
source are totally ordered -- property-tested), and export as JSON Lines
for offline analysis.

The disabled form (:class:`NullTraceLog`) makes ``emit`` an immediate
return.  Hot paths additionally guard emission with ``if obs.enabled:``
so the keyword-argument dict for a suppressed event is never even built
-- the zero-allocation no-op mode the instrumentation relies on.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    Mapping,
    Tuple,
    Union,
)

__all__ = ["TraceEvent", "TraceLog", "NullTraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured event.

    Attributes:
        seq: per-log monotone sequence number; later events always have
            larger ``seq``, so events sharing a ``source`` are totally
            ordered by it.
        t: clock reading at emission (the log's injected clock).
        kind: event type tag, e.g. ``"cell_quarantined"``.
        source: emitting component, e.g. ``"campaign/gradient"`` or
            ``"watchdog"``.
        fields: free-form JSON-safe payload.
    """

    seq: int
    t: float
    kind: str
    source: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """A flat JSON-safe dict (the JSONL record shape)."""
        record: Dict[str, object] = {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "source": self.source,
        }
        record.update(self.fields)
        return record


class TraceLog:
    """Bounded, ordered event log.

    Args:
        capacity: ring-buffer size; once full, the oldest events are
            evicted (counted in :attr:`dropped`).
        clock: time source stamped onto each event.  Injected for
            deterministic tests; defaults to :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._clock = clock
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer so far."""
        return self._dropped

    @property
    def next_seq(self) -> int:
        """The sequence number the next emitted event will carry."""
        return self._seq

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Retained events, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def emit(self, kind: str, source: str = "", **fields: object) -> TraceEvent:
        """Append one event; returns it (instrumentation ignores this)."""
        event = TraceEvent(
            seq=self._seq,
            t=self._clock(),
            kind=kind,
            source=source,
            fields=fields,
        )
        self._seq += 1
        if len(self._events) == self._capacity:
            self._dropped += 1
        self._events.append(event)
        return event

    def events_from(self, source: str) -> Tuple[TraceEvent, ...]:
        """Retained events emitted by ``source``, in sequence order."""
        return tuple(e for e in self._events if e.source == source)

    def events_of(self, kind: str) -> Tuple[TraceEvent, ...]:
        """Retained events of one kind, in sequence order."""
        return tuple(e for e in self._events if e.kind == kind)

    # ----------------------------------------------------------------- merge

    def extend(
        self,
        records: Iterable[Mapping[str, object]],
        source_prefix: str = "",
    ) -> int:
        """Append foreign event records (e.g. from a worker process).

        Each record is re-stamped with this log's next sequence numbers
        (preserving the incoming relative order, so the per-source total
        order survives the merge) and, optionally, a ``source_prefix``
        namespacing the emitting worker.  Returns the number of events
        appended.
        """
        appended = 0
        for record in records:
            payload = dict(record)
            payload.pop("seq", None)
            t = float(payload.pop("t", 0.0))
            kind = str(payload.pop("kind", ""))
            source = str(payload.pop("source", ""))
            if source_prefix:
                source = (
                    f"{source_prefix}/{source}" if source else source_prefix
                )
            event = TraceEvent(
                seq=self._seq, t=t, kind=kind, source=source, fields=payload
            )
            self._seq += 1
            if len(self._events) == self._capacity:
                self._dropped += 1
            self._events.append(event)
            appended += 1
        return appended

    # ------------------------------------------------------------------- IO

    def to_records(self) -> Tuple[Dict[str, object], ...]:
        """Every retained event as a JSON-safe dict."""
        return tuple(e.to_dict() for e in self._events)

    def to_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write retained events as JSON Lines; returns the line count.

        Args:
            destination: a path or an open text file object.
        """
        if isinstance(destination, str):
            from repro.ioutil import atomic_write_text

            lines = [
                json.dumps(event.to_dict(), sort_keys=True)
                for event in self._events
            ]
            atomic_write_text(
                destination, "".join(line + "\n" for line in lines)
            )
            return len(lines)
        count = 0
        for event in self._events:
            destination.write(json.dumps(event.to_dict(), sort_keys=True))
            destination.write("\n")
            count += 1
        return count

    def to_chrome_trace(self) -> Dict[str, object]:
        """This log as a Chrome Trace Event document (Perfetto-ready).

        Paired ``*_start``/``*_end`` events become duration bars, other
        events become instants, sources (and per-cell lifecycle streams)
        become tracks, and ``chunkN/`` worker shards merged by
        :meth:`extend` become separate processes.  See
        :mod:`repro.obs.chrome` for the full mapping.
        """
        from repro.obs.chrome import to_chrome_trace

        return to_chrome_trace(self)


class NullTraceLog(TraceLog):
    """The disabled log: ``emit`` is an immediate no-op.

    Instrumented code additionally guards emission behind
    ``if obs.enabled:`` so suppressed events allocate nothing at all.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1, clock=lambda: 0.0)

    def emit(self, kind: str, source: str = "", **fields: object) -> None:  # type: ignore[override]
        return None

    def extend(
        self,
        records: Iterable[Mapping[str, object]],
        source_prefix: str = "",
    ) -> int:
        return 0
