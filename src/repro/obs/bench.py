"""The unified benchmark harness behind ``nanobox-repro bench run``.

The repository carries one ``benchmarks/bench_*.py`` per reproduced
table, figure, ablation, or extension -- 37 of them -- and until this
module they reported to stdout only, so no perf number survived the run
that printed it.  The harness closes that gap:

* :func:`discover_benchmarks` finds every ``bench_*.py`` script (with an
  optional ``--filter`` glob);
* :func:`run_benchmark` drives one script through ``pytest`` in a child
  process (``REPRO_BENCH_SMOKE=1`` when smoke mode is on), captures the
  pytest-benchmark measurements, replays every raw round timing into a
  :class:`~repro.obs.metrics.MetricsRegistry` histogram, and builds a
  schema-versioned artifact;
* :func:`write_artifact` persists it as ``BENCH_<name>.json`` --
  wall-clock phases, per-test timer quantiles, throughput, recognised
  scalar-vs-batched speedup ratios, the full metrics snapshot, and a
  :func:`~repro.obs.provenance.collect_provenance` block.

Artifacts are the contract: ``bench compare`` (see
:mod:`repro.obs.compare`) diffs two of them and CI keeps a committed
baseline under ``results/bench_baseline/``, so a silent slowdown in a
hot path fails the build instead of fading into stdout history.
"""

from __future__ import annotations

import fnmatch
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ioutil import atomic_write_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import collect_provenance

__all__ = [
    "ARTIFACT_REQUIRED_KEYS",
    "BENCH_SCHEMA",
    "BENCH_SCHEMA_VERSION",
    "BenchRun",
    "artifact_name",
    "build_artifact",
    "discover_benchmarks",
    "load_artifact",
    "run_benchmark",
    "run_benchmarks",
    "write_artifact",
]

#: Schema identifier stamped into every artifact.
BENCH_SCHEMA = "repro.bench"

#: Bumped on any backwards-incompatible artifact shape change.
BENCH_SCHEMA_VERSION = 1

#: Top-level keys every artifact must carry (pinned by the golden test).
ARTIFACT_REQUIRED_KEYS = (
    "schema",
    "schema_version",
    "name",
    "script",
    "smoke",
    "status",
    "exit_code",
    "phases",
    "tests",
    "timers",
    "speedups",
    "metrics",
    "provenance",
)

#: Token substitutions that identify a fast twin of a slow timer; any
#: timer pair related by one of these yields a ``speedups`` entry.
_SPEEDUP_TWINS = (
    ("scalar", "batched"),
    ("scalar", "compiled"),
    ("batched", "compiled"),
    ("serial", "parallel"),
)


def repo_root() -> Path:
    """The checkout root (parent of ``src``), where ``benchmarks/`` lives."""
    return Path(__file__).resolve().parents[3]


def discover_benchmarks(
    root: Optional[Path] = None, filter_glob: Optional[str] = None
) -> List[Path]:
    """Every ``benchmarks/bench_*.py``, sorted; optionally glob-filtered.

    The glob matches the bare benchmark name (``perf_campaign``), the
    script stem (``bench_perf_campaign``), or the filename.
    """
    bench_dir = (root or repo_root()) / "benchmarks"
    scripts = sorted(bench_dir.glob("bench_*.py"))
    if filter_glob is None:
        return scripts
    return [
        s
        for s in scripts
        if fnmatch.fnmatch(_bare_name(s), filter_glob)
        or fnmatch.fnmatch(s.stem, filter_glob)
        or fnmatch.fnmatch(s.name, filter_glob)
    ]


def _bare_name(script: Path) -> str:
    """``bench_perf_campaign.py`` -> ``perf_campaign``."""
    stem = script.stem
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def artifact_name(script: Path) -> str:
    """The artifact filename for one script: ``BENCH_<name>.json``."""
    return f"BENCH_{_bare_name(script)}.json"


@dataclass(frozen=True)
class BenchRun:
    """Outcome of driving one benchmark script."""

    script: Path
    artifact: Dict[str, Any]

    @property
    def name(self) -> str:
        return str(self.artifact["name"])

    @property
    def passed(self) -> bool:
        return self.artifact["status"] == "passed"

    @property
    def wall_clock(self) -> float:
        return float(self.artifact["phases"]["run_s"])


def _speedups(timers: Mapping[str, Mapping[str, Any]]) -> Dict[str, float]:
    """Slow/fast wall-clock ratios between recognised timer twins.

    For every pair of timers whose names are related by one
    :data:`_SPEEDUP_TWINS` substitution (``..._scalar`` vs
    ``..._batched``, ``..._serial`` vs ``..._parallel``), record
    ``slow_mean / fast_mean`` under ``"<slow> vs <fast>"``.
    """
    ratios: Dict[str, float] = {}
    for slow_token, fast_token in _SPEEDUP_TWINS:
        for slow_name, slow_stats in timers.items():
            if slow_token not in slow_name:
                continue
            fast_name = slow_name.replace(slow_token, fast_token)
            fast_stats = timers.get(fast_name)
            if fast_stats is None or fast_name == slow_name:
                continue
            fast_mean = float(fast_stats["mean"])
            if fast_mean <= 0.0:
                continue
            label = f"{slow_name} vs {fast_name}"
            ratios[label] = float(slow_stats["mean"]) / fast_mean
    return ratios


def _timer_stats(registry: MetricsRegistry) -> Dict[str, Dict[str, Any]]:
    """Histogram timers rendered with nearest-rank quantiles."""
    timers: Dict[str, Dict[str, Any]] = {}
    for histogram in registry.histograms():
        if not histogram.count:
            continue
        timers[histogram.name] = {
            "count": histogram.count,
            "total": histogram.total,
            "min": histogram.min,
            "max": histogram.max,
            "mean": histogram.mean,
            "p50": histogram.quantile(0.5),
            "p95": histogram.quantile(0.95),
            "ops": (histogram.count / histogram.total)
            if histogram.total > 0
            else None,
        }
    return timers


def build_artifact(
    script: Path,
    exit_code: int,
    wall_clock: float,
    bench_report: Optional[Mapping[str, Any]],
    smoke: bool = False,
    seed: Optional[int] = None,
    provenance: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-versioned ``BENCH_*.json`` document.

    Pure given its inputs (``provenance`` injectable for tests): replays
    the pytest-benchmark raw round data into a fresh
    :class:`MetricsRegistry`, derives quantiles/throughput/speedups from
    the histograms, and wraps everything under the pinned schema keys.

    Args:
        script: the ``bench_*.py`` that ran.
        exit_code: pytest's exit status (0 = all tests passed).
        wall_clock: harness-measured seconds for the whole child run.
        bench_report: parsed ``--benchmark-json`` output, or ``None``
            when the run died before producing one.
        smoke: whether ``REPRO_BENCH_SMOKE=1`` was set for the run.
        seed: root seed recorded into provenance (benchmarks pin their
            own seeds internally; this is the harness-level override).
        provenance: pre-collected provenance block (default: collect).
    """
    registry = MetricsRegistry()
    registry.histogram("bench.run").observe(wall_clock)
    benchmarks: Sequence[Mapping[str, Any]] = (
        bench_report.get("benchmarks", []) if bench_report else []
    )
    for entry in benchmarks:
        histogram = registry.histogram(f"bench.{entry['name']}")
        stats = entry.get("stats", {})
        for sample in stats.get("data") or []:
            histogram.observe(float(sample))
    timers = _timer_stats(registry)
    measured = sum(
        t["total"] for name, t in timers.items() if name != "bench.run"
    )
    if provenance is None:
        provenance = collect_provenance(
            seed=seed,
            config={
                "script": str(script.name),
                "smoke": smoke,
                "pytest_benchmark_version": (
                    bench_report.get("version") if bench_report else None
                ),
            },
        )
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": _bare_name(script),
        "script": f"benchmarks/{script.name}",
        "smoke": smoke,
        "status": "passed" if exit_code == 0 else "failed",
        "exit_code": exit_code,
        "phases": {
            "run_s": wall_clock,
            "measured_s": measured,
            "harness_overhead_s": max(0.0, wall_clock - measured),
        },
        "tests": {"benchmarks": len(benchmarks)},
        "timers": timers,
        "speedups": _speedups(timers),
        "metrics": registry.snapshot(),
        "provenance": dict(provenance),
    }


def run_benchmark(
    script: Path,
    smoke: bool = False,
    seed: Optional[int] = None,
    timeout: float = 900.0,
    root: Optional[Path] = None,
) -> BenchRun:
    """Drive one benchmark script and return its artifact.

    The script runs under ``python -m pytest`` in a child process (so a
    crashing benchmark cannot take the harness down, and ``-m`` puts the
    checkout root on ``sys.path`` for ``benchmarks.conftest`` imports),
    with ``--benchmark-json`` capturing every measurement and
    ``REPRO_BENCH_SMOKE=1`` exported in smoke mode.
    """
    root = root or repo_root()
    env = dict(os.environ)
    if smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    else:
        env.pop("REPRO_BENCH_SMOKE", None)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        report_path = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(script.relative_to(root) if script.is_absolute() else script),
            "-q",
            "-p",
            "no:cacheprovider",
            f"--benchmark-json={report_path}",
        ]
        start = time.perf_counter()
        try:
            proc = subprocess.run(
                command,
                cwd=str(root),
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
            exit_code = proc.returncode
        except subprocess.TimeoutExpired:
            exit_code = -1
        wall_clock = time.perf_counter() - start
        bench_report: Optional[Dict[str, Any]] = None
        if report_path.exists():
            try:
                bench_report = json.loads(report_path.read_text())
            except json.JSONDecodeError:
                bench_report = None
    artifact = build_artifact(
        script,
        exit_code=exit_code,
        wall_clock=wall_clock,
        bench_report=bench_report,
        smoke=smoke,
        seed=seed,
    )
    return BenchRun(script=script, artifact=artifact)


def write_artifact(run: BenchRun, out_dir: Path) -> Path:
    """Persist one artifact as ``out_dir/BENCH_<name>.json``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / artifact_name(run.script)
    atomic_write_json(path, run.artifact)
    return path


def load_artifact(path: Path) -> Dict[str, Any]:
    """Load and schema-check one ``BENCH_*.json``.

    Raises:
        ValueError: when the document is not a version-1 bench artifact
            or is missing required keys.
    """
    with open(path) as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict) or artifact.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} artifact")
    if artifact.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {artifact.get('schema_version')!r} "
            f"unsupported (expected {BENCH_SCHEMA_VERSION})"
        )
    missing = [key for key in ARTIFACT_REQUIRED_KEYS if key not in artifact]
    if missing:
        raise ValueError(f"{path}: missing required keys {missing}")
    return artifact


def run_benchmarks(
    filter_glob: Optional[str] = None,
    smoke: bool = False,
    out_dir: Optional[Path] = None,
    seed: Optional[int] = None,
    timeout: float = 900.0,
    root: Optional[Path] = None,
    echo: Any = None,
) -> List[BenchRun]:
    """Discover, run, and persist every matching benchmark.

    Args:
        echo: a ``print``-like callable for per-script progress lines
            (``None`` silences them).
    """
    root = root or repo_root()
    out_dir = out_dir if out_dir is not None else root / "results" / "bench"
    runs: List[BenchRun] = []
    scripts = discover_benchmarks(root=root, filter_glob=filter_glob)
    for script in scripts:
        run = run_benchmark(
            script, smoke=smoke, seed=seed, timeout=timeout, root=root
        )
        path = write_artifact(run, out_dir)
        runs.append(run)
        if echo is not None:
            echo(
                f"{run.artifact['status']:>6}  {run.wall_clock:7.2f}s  "
                f"{path}"
            )
    return runs
