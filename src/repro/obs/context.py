"""The observer: one handle bundling metrics + trace, installed per run.

Instrumented code (campaign, executor, grid control, watchdog, lifecycle
experiments) never takes an observability parameter; it calls
:func:`get_observer` -- one module-global read -- and talks to whatever
is installed.  By default that is :data:`NULL_OBSERVER`, whose metrics
registry and trace log are shared no-op singletons, so the uninstrumented
cost is a global lookup plus a no-op method call.

A run opts in with::

    from repro.obs import Observer, observing

    obs = Observer()
    with observing(obs):
        campaign.run_workload_suite(...)
    print(obs.metrics.to_json())

The never-perturb contract: installing an observer MUST NOT change any
experiment outcome.  Observability code never draws from a NumPy
``Generator`` or :mod:`random`, never mutates simulation state, and only
reads counts plus its own injected clock.  A differential test pins
this: ``run_workload_suite`` and the lifecycle sweep produce *equal*
results with observability on and off.

The current observer is process-global (not thread-local): the code base
parallelises with process pools, and each worker process starts at
:data:`NULL_OBSERVER` unless the executor installs one for the chunk.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.trace import NullTraceLog, TraceLog

__all__ = ["Observer", "NULL_OBSERVER", "get_observer", "observing"]


class Observer:
    """Bundle of one run's metrics registry and trace log.

    Args:
        metrics: registry to record into; default builds a fresh one.
        trace: event log to emit into; default builds a fresh one.
        clock: convenience -- when given (and ``metrics``/``trace`` are
            defaulted), both are built over this clock, which is how
            tests make timer and event timestamps deterministic.
    """

    __slots__ = ("metrics", "trace", "enabled")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if metrics is None:
            metrics = (
                MetricsRegistry(clock=clock) if clock else MetricsRegistry()
            )
        if trace is None:
            trace = TraceLog(clock=clock) if clock else TraceLog()
        self.metrics = metrics
        self.trace = trace
        self.enabled = metrics.enabled or trace.enabled


#: The default, disabled observer: everything it touches is a no-op.
NULL_OBSERVER = Observer(metrics=NullMetricsRegistry(), trace=NullTraceLog())

_current: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The currently installed observer (:data:`NULL_OBSERVER` by default)."""
    return _current


@contextmanager
def observing(observer: Observer) -> Iterator[Observer]:
    """Install ``observer`` for the dynamic extent of the ``with`` block."""
    global _current
    previous = _current
    _current = observer
    try:
        yield observer
    finally:
        _current = previous
