"""Run provenance: who/what/where produced an artifact.

Every durable artifact this layer emits -- ``BENCH_*.json`` benchmark
documents and ``replay`` manifests -- embeds one :func:`collect_provenance`
block so a number archived today can be interrogated months later: which
commit produced it, on what interpreter and NumPy, on what class of
machine, from which seed and configuration.  This is the same discipline
the paper's own Monte Carlo tables need (five trials per point mean
nothing without the seed and variant roster that produced them), applied
to our performance numbers.

Nothing here perturbs an experiment: provenance is collected *around*
runs (before/after), never inside instrumented code, and the only
subprocess it spawns is ``git`` (gated, with a fallback when the tree is
not a checkout or git is missing).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "PROVENANCE_KEYS",
    "collect_provenance",
    "config_hash",
    "git_revision",
    "machine_fingerprint",
    "package_versions",
]

#: Keys every provenance block carries (pinned by the schema golden test).
PROVENANCE_KEYS = (
    "git_sha",
    "git_dirty",
    "python",
    "platform",
    "packages",
    "machine",
    "seed",
    "config_hash",
)


def git_revision(cwd: Optional[str] = None) -> Dict[str, Any]:
    """The checkout's commit SHA and dirty flag, or ``None`` outside git.

    Runs ``git rev-parse`` / ``git status --porcelain`` with a short
    timeout; any failure (no git binary, not a repository, timeout)
    degrades to ``{"git_sha": None, "git_dirty": None}`` rather than
    erroring -- artifacts must be writable from an sdist install too.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if sha.returncode != 0:
            return {"git_sha": None, "git_dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"git_sha": sha.stdout.strip(), "git_dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"git_sha": None, "git_dirty": None}


def package_versions() -> Dict[str, Optional[str]]:
    """Versions of the packages whose behaviour shapes the numbers."""
    versions: Dict[str, Optional[str]] = {}
    for name in ("repro", "numpy", "pytest", "pytest_benchmark"):
        try:
            module = __import__(name)
            versions[name] = getattr(module, "__version__", None)
        except ImportError:
            versions[name] = None
    return versions


def machine_fingerprint() -> Dict[str, Any]:
    """A coarse, non-identifying description of the executing machine.

    The hostname is hashed (12 hex chars), not stored: enough to tell
    "same box as the baseline" from "different box", without leaking
    infrastructure names into committed artifacts.
    """
    node = platform.node() or "unknown"
    material = "|".join((node, platform.machine(), platform.processor()))
    return {
        "fingerprint": hashlib.sha256(material.encode()).hexdigest()[:12],
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def config_hash(config: Mapping[str, Any]) -> str:
    """Stable short hash of a JSON-safe configuration mapping.

    Canonicalised with sorted keys so dict ordering never changes the
    hash; two runs with equal configuration always agree.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def collect_provenance(
    seed: Optional[int] = None,
    config: Optional[Mapping[str, Any]] = None,
    cwd: Optional[str] = None,
) -> Dict[str, Any]:
    """The full provenance block embedded in artifacts.

    Args:
        seed: the run's root RNG seed, when it has one.
        config: JSON-safe run configuration; stored hashed (see
            :func:`config_hash`) plus verbatim under ``"config"``.
        cwd: directory whose git checkout to describe (default: CWD).
    """
    block: Dict[str, Any] = dict(git_revision(cwd=cwd))
    block["python"] = platform.python_version()
    block["platform"] = sys.platform
    block["packages"] = package_versions()
    block["machine"] = machine_fingerprint()
    block["seed"] = seed
    config = dict(config or {})
    block["config"] = config
    block["config_hash"] = config_hash(config)
    return block
