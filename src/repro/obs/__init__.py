"""repro.obs: structured metrics, event tracing, and durable telemetry.

The observability layer underneath the campaign, executor, grid, and
lifecycle instrumentation:

* :class:`MetricsRegistry` -- named counters, gauges, and histogram
  timers (injected monotonic clock; mergeable across worker processes;
  :meth:`~MetricsRegistry.from_snapshot` round-trips a snapshot back
  into live instruments);
* :class:`TraceLog` -- a typed event bus with ring-buffer retention,
  JSONL export, and :meth:`~TraceLog.to_chrome_trace` Perfetto export;
* :class:`Observer` / :func:`observing` / :func:`get_observer` -- the
  per-run handle instrumented code reads (a shared no-op by default);
* :func:`report_metrics` -- the ASCII summary behind the CLI's
  ``--obs-report``;
* :mod:`repro.obs.bench` / :mod:`repro.obs.compare` -- the benchmark
  harness emitting schema-versioned ``BENCH_*.json`` artifacts and the
  regression comparison engine behind ``nanobox-repro bench``;
* :mod:`repro.obs.provenance` / :mod:`repro.obs.manifest` -- run
  provenance blocks and exact-replay manifests
  (``--manifest`` / ``nanobox-repro replay``).

The layer's contract is *never perturb*: an instrumented run is
bit-identical to a bare run (no RNG draws, no state mutation), with
under 5% throughput overhead on the campaign hot path
(``benchmarks/bench_obs_overhead.py`` asserts both).
"""

from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.context import NULL_OBSERVER, Observer, get_observer, observing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.provenance import collect_provenance
from repro.obs.report import lifecycle_timeline, report_metrics
from repro.obs.trace import NullTraceLog, TraceEvent, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTraceLog",
    "NULL_OBSERVER",
    "Observer",
    "TraceEvent",
    "TraceLog",
    "collect_provenance",
    "get_observer",
    "lifecycle_timeline",
    "observing",
    "report_metrics",
    "to_chrome_trace",
    "write_chrome_trace",
]
