"""Structured metrics: counters, gauges, and histogram timers.

The paper's whole evaluation is counting -- injected faults vs. observed
errors per variant (Table 2, Figs. 7-9) -- and every layer of this
reproduction grew its own ad-hoc tally dataclass (``TrialResult``,
``DeliveryStats``, ``ExecutorStats``, ``ProbeReport``).
:class:`MetricsRegistry` is the common substrate underneath them: named
counters, gauges, and histograms that any layer can increment, that merge
across process-pool workers, and that export to one JSON document per run.

Two properties matter more than features:

* **Determinism.**  Metrics only ever *read* state (counts, an injected
  monotonic clock); they never draw from any RNG, so instrumented runs are
  bit-identical to bare runs.  Tests inject a fake clock to make timer
  output deterministic too.
* **Hot-path cost.**  A counter increment is one dict hit and an integer
  add; the disabled form (:class:`NullMetricsRegistry`) returns shared
  singleton no-op instruments and never calls the clock, so
  instrumentation can stay in hot paths unconditionally.

Merge semantics (used to fold worker-process registries into the
parent's): counters add, histograms concatenate sample streams, gauges
last-write-wins.  Counter merge is associative and commutative;
histogram merge is associative (concatenation), which is what the
executor's ordered chunk fold relies on.
"""

from __future__ import annotations

import json
import time
from bisect import insort
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
]


class Counter:
    """A monotonically increasing named tally."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self._value = value

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative: counters never go down)."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self._value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_set")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self._value = value
        self._set = False

    @property
    def value(self) -> float:
        return self._value

    @property
    def assigned(self) -> bool:
        """True once :meth:`set` has been called (merge uses this)."""
        return self._set

    def set(self, value: float) -> None:
        self._value = value
        self._set = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """A named sample distribution (the timer backbone).

    Samples are kept sorted (insertion-sorted on observe) so quantiles
    are O(1) reads; ``max_samples`` bounds memory by uniformly thinning
    once the cap is hit -- count/total/min/max stay exact, quantiles
    become approximate.  Campaign-scale runs record thousands of timer
    samples, well under the default cap.
    """

    __slots__ = ("name", "_sorted", "_count", "_total", "_min", "_max",
                 "_max_samples")

    DEFAULT_MAX_SAMPLES = 100_000

    def __init__(
        self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> None:
        if max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2, got {max_samples}"
            )
        self.name = name
        self._sorted: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._max_samples = max_samples

    @property
    def count(self) -> int:
        """Samples observed (exact, even after thinning)."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed samples (exact, even after thinning)."""
        return self._total

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def samples(self) -> Tuple[float, ...]:
        """Retained samples, ascending."""
        return tuple(self._sorted)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        insort(self._sorted, value)
        if len(self._sorted) > self._max_samples:
            # Uniform decimation: drop every other retained sample.  The
            # survivors still span [min, max] because endpoints are kept.
            self._sorted = self._sorted[::2]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of retained samples (nearest-rank).

        Invariants (property-tested): ``quantile(0) == min``,
        ``quantile(1) == max``, and ``quantile`` is monotone
        non-decreasing in ``q``.

        Raises:
            ValueError: for an empty histogram or ``q`` outside [0, 1].
        """
        if not self._sorted:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        index = min(int(q * len(self._sorted)), len(self._sorted) - 1)
        return self._sorted[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name!r}, count={self._count}, "
            f"total={self._total:g})"
        )


#: Default registry clock, aliased so methods named ``time`` inside the
#: class body cannot shadow the module during default-argument binding.
_PERF_COUNTER = time.perf_counter


class _TimerContext:
    """Reusable ``with registry.time(name):`` context manager."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms for one run.

    Args:
        clock: monotonic time source for :meth:`time` timers.  Injected
            so tests are deterministic; defaults to
            :func:`time.perf_counter`.  Never consulted except inside an
            active timer context.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def time(self, name: str) -> _TimerContext:
        """Context manager recording its duration into histogram ``name``."""
        return _TimerContext(self.histogram(name), self._clock)

    # -------------------------------------------------------------- iteration

    def counters(self) -> Iterator[Counter]:
        """All counters, sorted by name."""
        return iter(sorted(self._counters.values(), key=lambda c: c.name))

    def gauges(self) -> Iterator[Gauge]:
        """All gauges, sorted by name."""
        return iter(sorted(self._gauges.values(), key=lambda g: g.name))

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, sorted by name."""
        return iter(sorted(self._histograms.values(), key=lambda h: h.name))

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    # ------------------------------------------------------------- merge / IO

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe dict of everything recorded so far."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value
                for name, g in sorted(self._gauges.items())
                if g.assigned
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "samples": list(h.samples),
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot, serialized."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges take the incoming value (last write wins);
        histograms replay the incoming retained samples, then restore
        the exact count/total/min/max accounting.  Counter merge is
        associative and commutative (integer addition), so folding
        worker snapshots in any grouping yields the same totals --
        property-tested.
        """
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():  # type: ignore[union-attr]
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            histogram = self.histogram(name)
            for sample in data["samples"]:
                insort(histogram._sorted, float(sample))
            if len(histogram._sorted) > histogram._max_samples:
                histogram._sorted = histogram._sorted[::2]
            histogram._count += int(data["count"])
            histogram._total += float(data["total"])
            for bound in ("min", "max"):
                incoming = data[bound]
                if incoming is None:
                    continue
                current = getattr(histogram, f"_{bound}")
                if current is None:
                    setattr(histogram, f"_{bound}", float(incoming))
                elif bound == "min":
                    histogram._min = min(current, float(incoming))
                else:
                    histogram._max = max(current, float(incoming))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (see :meth:`merge_snapshot`)."""
        self.merge_snapshot(other.snapshot())

    @classmethod
    def from_snapshot(
        cls,
        snapshot: Mapping[str, object],
        clock: Callable[[], float] = _PERF_COUNTER,
    ) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` / :meth:`to_json` dump.

        The inverse of :meth:`snapshot` up to sample retention:
        ``MetricsRegistry.from_snapshot(r.snapshot()).snapshot()
        == r.snapshot()`` holds exactly (property-tested), which is what
        offline analysis and ``bench compare`` rely on to reload a
        ``BENCH_*.json``'s metrics section as live instruments.
        """
        registry = MetricsRegistry(clock=clock)
        registry.merge_snapshot(snapshot)
        return registry

    @classmethod
    def from_json(
        cls,
        text: str,
        clock: Callable[[], float] = _PERF_COUNTER,
    ) -> "MetricsRegistry":
        """Rebuild a registry from its :meth:`to_json` serialisation."""
        return cls.from_snapshot(json.loads(text), clock=clock)


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by the null registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


class _NullTimerContext:
    """Reusable no-op timer: never reads the clock, never allocates."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimerContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")
_NULL_TIMER = _NullTimerContext()


def _never_called_clock() -> float:  # pragma: no cover - by construction
    raise AssertionError("NullMetricsRegistry must never read the clock")


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Guarantees zero observable side effects: nothing is recorded, the
    clock is *never* called (it raises if it somehow is), and no
    per-call allocation happens -- every accessor returns a module-level
    singleton.  This is what :data:`repro.obs.NULL_OBSERVER` carries, so
    uninstrumented hot paths pay one attribute lookup and one method
    call per metric touch.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=_never_called_clock)

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def time(self, name: str) -> _NullTimerContext:  # type: ignore[override]
        return _NULL_TIMER
