"""Chrome-trace-event export: open a grid run in ui.perfetto.dev.

Translates a :class:`~repro.obs.trace.TraceLog` into the Trace Event
JSON format that Perfetto (and chrome://tracing before it) renders: a
``{"traceEvents": [...]}`` document whose entries carry ``ph`` (event
phase), ``ts`` (microseconds), ``pid``/``tid`` (track routing), ``name``
and ``args``.

Mapping rules:

* paired ``<base>_start`` / ``<base>_end`` events from one track become
  one complete duration event (``ph: "X"``) named ``<base>``, spanning
  the two timestamps -- this is how campaign trials, control jobs, and
  lifecycle points show up as bars;
* every other event becomes a thread-scoped instant (``ph: "i"``);
* tracks: each emitting ``source`` gets its own ``tid``; events carrying
  a ``cell`` field (the watchdog's lifecycle stream) are routed to a
  per-cell track instead, so one row per cell tells its health story;
* worker shards merged by :meth:`TraceLog.extend` under ``chunkN/``
  prefixes become separate *processes* (``pid``), because their
  timestamps come from a different clock -- each worker's timeline is
  internally consistent but not aligned with the parent's, and distinct
  ``pid`` timelines is exactly how the trace viewer presents that;
* ``ph: "M"`` metadata events name every process and thread.

Track and process ids are assigned in order of first appearance over the
seq-ordered event stream, so export is deterministic for a given log.
"""

from __future__ import annotations

import json
import re
from typing import IO, Dict, List, Tuple, Union

from repro.obs.trace import TraceEvent, TraceLog

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Parent-process events (no ``chunkN/`` prefix) get this pid.
MAIN_PID = 1

_CHUNK_PREFIX = re.compile(r"^(chunk\d+)(?:/(.*))?$")

#: Seconds -> the format's microsecond ``ts`` unit.
_US = 1e6


def _split_shard(source: str) -> Tuple[str, str]:
    """``("chunk3", rest)`` for worker-shard sources, ``("", source)`` else."""
    match = _CHUNK_PREFIX.match(source)
    if match is None:
        return "", source
    return match.group(1), match.group(2) or ""


def _track_name(event: TraceEvent, local_source: str) -> str:
    cell = event.fields.get("cell")
    if cell is not None:
        try:
            return f"cell {tuple(cell)}"  # type: ignore[arg-type]
        except TypeError:
            return f"cell {cell}"
    return local_source or "(main)"


def to_chrome_trace(trace: TraceLog) -> Dict[str, object]:
    """Render ``trace`` as a Trace Event Format document (JSON-safe dict).

    The result serialises directly with :func:`json.dumps` and loads in
    ui.perfetto.dev as-is.  See the module docstring for the mapping.
    """
    trace_events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, str], int] = {}
    # Open duration events: (pid, tid, base kind) -> stack of start events.
    open_spans: Dict[Tuple[int, int, str], List[TraceEvent]] = {}

    def pid_for(shard: str) -> int:
        if shard not in pids:
            pid = MAIN_PID + len(pids)
            pids[shard] = pid
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"name": shard or "main"},
                }
            )
        return pids[shard]

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tid = 1 + sum(1 for (p, _t) in tids if p == pid)
            tids[key] = tid
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": track},
                }
            )
        return tids[key]

    for event in trace.events:
        shard, local_source = _split_shard(event.source)
        pid = pid_for(shard)
        tid = tid_for(pid, _track_name(event, local_source))
        args = {"seq": event.seq, "source": event.source, **event.fields}
        if event.kind.endswith("_start"):
            open_spans.setdefault(
                (pid, tid, event.kind[: -len("_start")]), []
            ).append(event)
            continue
        if event.kind.endswith("_end"):
            base = event.kind[: -len("_end")]
            stack = open_spans.get((pid, tid, base))
            if stack:
                start = stack.pop()
                trace_events.append(
                    {
                        "ph": "X",
                        "name": base,
                        "pid": pid,
                        "tid": tid,
                        "ts": start.t * _US,
                        "dur": max(0.0, (event.t - start.t) * _US),
                        "args": {
                            "seq": start.seq,
                            "source": event.source,
                            **start.fields,
                            **event.fields,
                        },
                    }
                )
                continue
            # An _end with no matching _start (e.g. the start was evicted
            # by the ring buffer): degrade to an instant, never drop it.
        trace_events.append(
            {
                "ph": "i",
                "name": event.kind,
                "pid": pid,
                "tid": tid,
                "ts": event.t * _US,
                "s": "t",
                "args": args,
            }
        )

    # Spans whose _end never arrived render as B (begin) events so the
    # viewer still shows the opened-but-unfinished work.
    for (pid, tid, base), stack in open_spans.items():
        for start in stack:
            trace_events.append(
                {
                    "ph": "B",
                    "name": base,
                    "pid": pid,
                    "tid": tid,
                    "ts": start.t * _US,
                    "args": {"seq": start.seq, **start.fields},
                }
            )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: TraceLog, destination: Union[str, IO[str]]
) -> int:
    """Write the Trace Event document; returns the event count."""
    document = to_chrome_trace(trace)
    if isinstance(destination, str):
        from repro.ioutil import atomic_write_json

        atomic_write_json(destination, document, indent=1)
    else:
        json.dump(document, destination, indent=1, sort_keys=True)
        destination.write("\n")
    return len(document["traceEvents"])  # type: ignore[arg-type]
