"""ASCII rendering of one run's metrics and trace.

``report_metrics`` turns an :class:`~repro.obs.context.Observer` (or a
bare registry + log) into the fixed-width summary the CLI prints under
``--obs-report``: top timers by total time, the counter table, gauges,
and a per-cell lifecycle timeline reconstructed from watchdog trace
events (quarantine / probe / re-admission / retirement, in cycle order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.context import Observer
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, TraceLog

__all__ = [
    "checkpoint_quarantine_summary",
    "lifecycle_timeline",
    "report_metrics",
]

#: Trace event kinds that describe one cell's health lifecycle.
_LIFECYCLE_KINDS = (
    "cell_suspect",
    "cell_quarantined",
    "probe_result",
    "cell_readmitted",
    "cell_retired",
)


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _timer_table(metrics: MetricsRegistry, top: int) -> str:
    from repro.experiments.report import format_table

    histograms = sorted(
        metrics.histograms(), key=lambda h: h.total, reverse=True
    )[:top]
    if not histograms:
        return "(no timers recorded)"
    rows = [
        (
            h.name,
            h.count,
            _format_seconds(h.total),
            _format_seconds(h.mean),
            _format_seconds(h.quantile(0.5)),
            _format_seconds(h.quantile(0.95)),
            _format_seconds(h.max or 0.0),
        )
        for h in histograms
        if h.count
    ]
    if not rows:
        return "(no timers recorded)"
    return format_table(
        ("timer", "count", "total", "mean", "p50", "p95", "max"), rows
    )


def _counter_table(metrics: MetricsRegistry) -> str:
    from repro.experiments.report import format_table

    rows = [(c.name, c.value) for c in metrics.counters()]
    if not rows:
        return "(no counters recorded)"
    return format_table(("counter", "value"), rows)


def _gauge_table(metrics: MetricsRegistry) -> Optional[str]:
    from repro.experiments.report import format_table

    rows = [(g.name, f"{g.value:g}") for g in metrics.gauges() if g.assigned]
    if not rows:
        return None
    return format_table(("gauge", "value"), rows)


def _describe_lifecycle_event(event: TraceEvent) -> str:
    cycle = event.fields.get("cycle", "?")
    if event.kind == "probe_result":
        verdict = "pass" if event.fields.get("passed") else "fail"
        outcome = event.fields.get("outcome", "")
        return f"probe {verdict}->{outcome}@{cycle}"
    label = {
        "cell_suspect": "suspect",
        "cell_quarantined": "quarantined",
        "cell_readmitted": "readmitted",
        "cell_retired": "retired",
    }.get(event.kind, event.kind)
    return f"{label}@{cycle}"


def lifecycle_timeline(trace: TraceLog) -> str:
    """Per-cell health history, one line per cell, events in trace order.

    Cells that never left ACTIVE (no lifecycle events) are omitted.
    """
    by_cell: Dict[Tuple[int, ...], List[TraceEvent]] = {}
    for event in trace.events:
        if event.kind not in _LIFECYCLE_KINDS:
            continue
        cell = event.fields.get("cell")
        if cell is None:
            continue
        by_cell.setdefault(tuple(cell), []).append(event)  # type: ignore[arg-type]
    if not by_cell:
        return "(no lifecycle events traced)"
    lines = []
    for cell in sorted(by_cell):
        steps = " -> ".join(
            _describe_lifecycle_event(e) for e in by_cell[cell]
        )
        lines.append(f"cell {cell}: {steps}")
    return "\n".join(lines)


def checkpoint_quarantine_summary(trace: TraceLog) -> Optional[str]:
    """One line per quarantined checkpoint record, or ``None`` when clean.

    Built from the ``checkpoint_corrupt`` trace events the store emits as
    it sets invalid records aside, so ``--obs-report`` surfaces *why*
    each ``*.corrupt`` file exists (truncation, bit flip, stale schema,
    foreign run key) alongside the count -- quiet quarantine piles are
    how real corruption goes unnoticed.
    """
    events = [e for e in trace.events if e.kind == "checkpoint_corrupt"]
    if not events:
        return None
    lines = [f"{len(events)} record(s) quarantined (*.corrupt):"]
    for event in events:
        chunk = event.fields.get("chunk", "?")
        reason = event.fields.get("reason", "unknown reason")
        name = event.fields.get("quarantined", "?")
        lines.append(f"  chunk {chunk}: {reason} -> {name}")
    return "\n".join(lines)


def report_metrics(
    observer: Observer,
    top_timers: int = 10,
    title: str = "Observability report",
) -> str:
    """Render one observer's metrics + trace as an ASCII summary."""
    sections: List[str] = [title, "=" * len(title)]
    sections.append("")
    sections.append(f"Top timers (by total time, top {top_timers})")
    sections.append(_timer_table(observer.metrics, top_timers))
    sections.append("")
    sections.append("Counters")
    sections.append(_counter_table(observer.metrics))
    gauges = _gauge_table(observer.metrics)
    if gauges is not None:
        sections.append("")
        sections.append("Gauges")
        sections.append(gauges)
    quarantine = checkpoint_quarantine_summary(observer.trace)
    if quarantine is not None:
        sections.append("")
        sections.append("Checkpoint quarantine")
        sections.append(quarantine)
    sections.append("")
    sections.append("Cell lifecycle timeline")
    sections.append(lifecycle_timeline(observer.trace))
    dropped = observer.trace.dropped
    sections.append("")
    sections.append(
        f"Trace: {len(observer.trace)} event(s) retained, {dropped} evicted"
    )
    return "\n".join(sections) + "\n"
