"""Regression detection between two benchmark artifacts.

``nanobox-repro bench compare BASELINE CURRENT`` loads two
``BENCH_*.json`` documents (or two directories of them), matches their
timers by name, and judges each ratio against a noise threshold:

* ``ratio = current_mean / baseline_mean``;
* timers faster than ``min_time`` in both runs are ignored entirely --
  sub-millisecond timings are scheduler noise, not signal;
* a ratio above the metric's threshold is a **regression**; below its
  reciprocal, an **improvement**; in between, **ok**;
* thresholds are per-metric: a glob->ratio mapping consulted
  first-match-wins, with a default for everything unmatched, so CI can
  hold ``bench.run`` of a hot benchmark to 1.5x while leaving chatty
  micro-timers advisory.

Beyond timer ratios, ``--speedup-floor GLOB=RATIO`` judges the *current*
artifact's derived ``speedups`` dict (e.g. scalar-vs-compiled): an entry
matching the glob whose value falls below the floor is a regression,
even if every individual timer stayed within its threshold.  This is how
CI asserts the compiled tier keeps paying for itself rather than merely
not getting slower.

The ASCII delta table is the human surface; :attr:`BenchComparison.ok`
(any regression => ``False``) is the CI surface, mapped to the process
exit status by the CLI.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.bench import load_artifact

__all__ = [
    "DEFAULT_MIN_TIME",
    "DEFAULT_THRESHOLD",
    "BenchComparison",
    "MetricDelta",
    "compare_artifacts",
    "compare_paths",
]

#: Default current/baseline ratio above which a timer is a regression.
DEFAULT_THRESHOLD = 1.5

#: Timers under this many seconds in both runs are too noisy to judge.
DEFAULT_MIN_TIME = 1e-3


@dataclass(frozen=True)
class MetricDelta:
    """One timer's baseline-vs-current judgement."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    ratio: Optional[float]
    threshold: float
    verdict: str  # "ok" | "regression" | "improved" | "new" | "missing" | "noise"


@dataclass
class BenchComparison:
    """Every judged metric for one artifact pair (or directory pair)."""

    name: str
    deltas: List[MetricDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.verdict == "improved"]

    @property
    def ok(self) -> bool:
        """True when no judged metric regressed."""
        return not self.regressions

    def table_text(self) -> str:
        """The ASCII delta table (one row per judged metric)."""
        from repro.experiments.report import format_table

        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value * 1e3:.3f}ms"

        def fmt_value(delta: MetricDelta, value: Optional[float]) -> str:
            if value is None:
                return "-"
            if delta.name.startswith("speedup:"):
                return f"{value:.2f}x"
            return fmt(value)

        rows = [
            (
                delta.name,
                fmt_value(delta, delta.baseline),
                fmt_value(delta, delta.current),
                "-" if delta.ratio is None else f"{delta.ratio:.2f}x",
                f">={delta.threshold:.2f}x"
                if delta.name.startswith("speedup:")
                else f"<{delta.threshold:.2f}x",
                delta.verdict.upper()
                if delta.verdict == "regression"
                else delta.verdict,
            )
            for delta in self.deltas
        ]
        header = f"[{self.name}]"
        table = format_table(
            ("timer (mean)", "baseline", "current", "ratio", "limit",
             "verdict"),
            rows,
        )
        lines = [header, table]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def _threshold_for(
    name: str,
    thresholds: Optional[Mapping[str, float]],
    default: float,
) -> float:
    """First glob in ``thresholds`` matching ``name``, else ``default``."""
    if thresholds:
        for pattern, value in thresholds.items():
            if fnmatch.fnmatch(name, pattern):
                return float(value)
    return default


def _floor_for(
    name: str,
    floors: Optional[Mapping[str, float]],
) -> Optional[float]:
    """First glob in ``floors`` matching ``name``, else ``None``."""
    if floors:
        for pattern, value in floors.items():
            if fnmatch.fnmatch(name, pattern):
                return float(value)
    return None


def compare_artifacts(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: Optional[Mapping[str, float]] = None,
    min_time: float = DEFAULT_MIN_TIME,
    speedup_floors: Optional[Mapping[str, float]] = None,
) -> BenchComparison:
    """Judge ``current`` against ``baseline`` timer by timer.

    Args:
        baseline: the reference ``BENCH_*.json`` document.
        current: the freshly measured document.
        threshold: default regression ratio for unmatched metrics.
        thresholds: per-metric overrides, ``{glob: ratio}``,
            first-match-wins in iteration order.
        min_time: timers whose mean is under this in *both* runs are
            marked ``noise`` and never fail the comparison.
        speedup_floors: ``{glob: minimum}`` judged against the *current*
            artifact's derived ``speedups`` entries; a matching entry
            below its floor is a regression.  Unlike timer thresholds
            this is an absolute property of the current run, not a
            baseline ratio, so a stale baseline cannot mask a tier that
            stopped being fast.
    """
    comparison = BenchComparison(name=str(current.get("name", "?")))
    if baseline.get("smoke") != current.get("smoke"):
        comparison.notes.append(
            "smoke mode differs between baseline and current; "
            "ratios compare different workload sizes"
        )
    base_timers: Mapping[str, Any] = baseline.get("timers", {})
    curr_timers: Mapping[str, Any] = current.get("timers", {})
    for name in sorted(set(base_timers) | set(curr_timers)):
        limit = _threshold_for(name, thresholds, threshold)
        base = base_timers.get(name)
        curr = curr_timers.get(name)
        if base is None or curr is None:
            comparison.deltas.append(
                MetricDelta(
                    name=name,
                    baseline=float(base["mean"]) if base else None,
                    current=float(curr["mean"]) if curr else None,
                    ratio=None,
                    threshold=limit,
                    verdict="new" if base is None else "missing",
                )
            )
            continue
        base_mean = float(base["mean"])
        curr_mean = float(curr["mean"])
        if base_mean < min_time and curr_mean < min_time:
            verdict, ratio = "noise", None
        elif base_mean <= 0.0:
            verdict, ratio = "new", None
        else:
            ratio = curr_mean / base_mean
            if ratio > limit:
                verdict = "regression"
            elif ratio < 1.0 / limit:
                verdict = "improved"
            else:
                verdict = "ok"
        comparison.deltas.append(
            MetricDelta(
                name=name,
                baseline=base_mean,
                current=curr_mean,
                ratio=ratio,
                threshold=limit,
                verdict=verdict,
            )
        )
    if speedup_floors:
        base_speedups: Mapping[str, Any] = baseline.get("speedups", {}) or {}
        curr_speedups: Mapping[str, Any] = current.get("speedups", {}) or {}
        for name in sorted(curr_speedups):
            floor = _floor_for(name, speedup_floors)
            if floor is None:
                continue
            value = float(curr_speedups[name])
            base = base_speedups.get(name)
            comparison.deltas.append(
                MetricDelta(
                    name=f"speedup:{name}",
                    baseline=float(base) if base is not None else None,
                    current=value,
                    ratio=value,
                    threshold=floor,
                    verdict="ok" if value >= floor else "regression",
                )
            )
        for pattern, floor in speedup_floors.items():
            if not any(fnmatch.fnmatch(n, pattern) for n in curr_speedups):
                comparison.notes.append(
                    f"speedup floor {pattern!r}>={float(floor):g}x matched "
                    "no derived speedup in the current artifact"
                )
    return comparison


def _artifact_map(path: Path) -> Dict[str, Path]:
    """``{bench name: artifact path}`` for a file or directory target."""
    if path.is_dir():
        artifacts = sorted(path.glob("BENCH_*.json"))
        return {p.stem[len("BENCH_"):]: p for p in artifacts}
    return {path.stem[len("BENCH_"):] if path.stem.startswith("BENCH_")
            else path.stem: path}


def compare_paths(
    baseline_path: Path,
    current_path: Path,
    only: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
    thresholds: Optional[Mapping[str, float]] = None,
    min_time: float = DEFAULT_MIN_TIME,
    speedup_floors: Optional[Mapping[str, float]] = None,
    require_complete: bool = False,
) -> Tuple[List[BenchComparison], List[str], List[str]]:
    """Compare two artifacts or two directories of artifacts.

    Returns ``(comparisons, warnings, errors)``: warnings name benches
    present on only one side (a new benchmark has no baseline yet --
    advisory); errors are unreadable or schema-invalid artifacts, which
    should fail CI alongside regressions.

    With ``require_complete``, a benchmark present in the baseline but
    missing from the current run is an *error*, not a warning -- a
    silently skipped benchmark looks exactly like a passed one
    otherwise, which is how coverage rots.  New benchmarks (current
    only) stay advisory either way.
    """
    base_map = _artifact_map(baseline_path)
    curr_map = _artifact_map(current_path)
    if only is not None:
        base_map = {n: p for n, p in base_map.items()
                    if fnmatch.fnmatch(n, only)}
        curr_map = {n: p for n, p in curr_map.items()
                    if fnmatch.fnmatch(n, only)}
    warnings: List[str] = []
    errors: List[str] = []
    for name in sorted(set(base_map) - set(curr_map)):
        message = f"{name}: in baseline but not in current run"
        (errors if require_complete else warnings).append(message)
    for name in sorted(set(curr_map) - set(base_map)):
        warnings.append(f"{name}: no committed baseline")
    comparisons: List[BenchComparison] = []
    for name in sorted(set(base_map) & set(curr_map)):
        try:
            baseline = load_artifact(base_map[name])
            current = load_artifact(curr_map[name])
        except (OSError, ValueError) as exc:
            errors.append(str(exc))
            continue
        comparisons.append(
            compare_artifacts(
                baseline,
                current,
                threshold=threshold,
                thresholds=thresholds,
                min_time=min_time,
                speedup_floors=speedup_floors,
            )
        )
    return comparisons, warnings, errors
