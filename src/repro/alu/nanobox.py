"""The NanoBox lookup-table ALU core.

Structure (reverse-engineered from paper Table 2's site counts, see
DESIGN.md Section 2): eight bit slices, each with a *result* LUT and a
*carry* LUT of five inputs -- ``(a_i, b_i, carry_in, op1, op0)`` -- so each
truth table has 32 entries.  Sixteen 32-bit tables give the 512 uncoded
sites of ``alunn``; Hamming coding (two 16-bit blocks, 5 check bits each)
gives 672; triplicated strings give 1536.

The architectural 3-bit opcode is compressed to the 2-bit internal code by
fault-free control (the paper models faults only in the LUT bit strings for
this ALU family).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.alu.base import (
    ALUResult,
    FaultableUnit,
    INTERNAL_OPCODE,
    Opcode,
    RESULT_BITS,
)
from repro.coding.bits import bit_length_mask
from repro.faults.sites import Segment, SiteSpace
from repro.lut.table import TruthTable

#: LUT address layout: bit0 = a_i, bit1 = b_i, bit2 = carry-in,
#: bits 3-4 = internal opcode.
SLICE_LUT_INPUTS = 5


def _result_function(a: int, b: int, c: int, op_lo: int, op_hi: int) -> int:
    """Truth function of a slice's result LUT."""
    op = op_lo | (op_hi << 1)
    if op == 0b00:
        return a & b
    if op == 0b01:
        return a | b
    if op == 0b10:
        return a ^ b
    return a ^ b ^ c  # ADD: full-adder sum


def _carry_function(a: int, b: int, c: int, op_lo: int, op_hi: int) -> int:
    """Truth function of a slice's carry LUT (live only for ADD)."""
    op = op_lo | (op_hi << 1)
    if op != 0b11:
        return 0
    return (a & b) | (b & c) | (a & c)  # full-adder carry


@lru_cache(maxsize=1)
def result_truth_table() -> TruthTable:
    """The 32-entry result-LUT truth table shared by all eight slices.

    Cached: every :class:`NanoBoxALU` construction needs it, and the
    parallel campaign executor constructs ALUs in every worker for every
    work item.  :class:`TruthTable` is immutable, so sharing is safe.
    """
    return TruthTable.from_function(SLICE_LUT_INPUTS, _result_function)


@lru_cache(maxsize=1)
def carry_truth_table() -> TruthTable:
    """The 32-entry carry-LUT truth table shared by all eight slices (cached)."""
    return TruthTable.from_function(SLICE_LUT_INPUTS, _carry_function)


class NanoBoxALU(FaultableUnit):
    """Eight-slice ripple ALU built from error-coded lookup tables.

    Args:
        scheme: bit-level coding scheme for every LUT -- ``"none"``
            (``alunn``), ``"hamming"`` (``alunh``), ``"tmr"`` (``aluns``),
            or any other scheme registered with :mod:`repro.lut`.
        width: operand width; the paper's cell uses 8.
    """

    def __init__(
        self,
        scheme: str = "none",
        width: int = RESULT_BITS,
        block_size: int = 16,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._scheme = scheme
        self._width = width
        # All slices share the same two truth tables; each slice still owns
        # a distinct range of fault sites, applied via per-read fault words.
        from repro.lut.gate_decoder import make_lut

        self._result_lut = make_lut(result_truth_table(), scheme, block_size)
        self._carry_lut = make_lut(carry_truth_table(), scheme, block_size)
        self._lut_bits = self._result_lut.total_bits
        self._lut_mask = bit_length_mask(self._lut_bits)

        self._space = SiteSpace(f"nanobox_alu[{scheme}]")
        self._result_segments: List[Segment] = []
        self._carry_segments: List[Segment] = []
        for i in range(width):
            self._result_segments.append(
                self._space.add(f"slice{i}.result_lut", self._lut_bits)
            )
            self._carry_segments.append(
                self._space.add(f"slice{i}.carry_lut", self._lut_bits)
            )

    @property
    def scheme(self) -> str:
        """Bit-level coding scheme of every LUT in this ALU."""
        return self._scheme

    @property
    def width(self) -> int:
        """Operand width in bits."""
        return self._width

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    @property
    def lut_count(self) -> int:
        """Number of lookup tables (two per slice)."""
        return 2 * self._width

    @property
    def result_lut(self):
        """The coded result LUT shared by the slices (batched-engine hook)."""
        return self._result_lut

    @property
    def carry_lut(self):
        """The coded carry LUT shared by the slices (batched-engine hook)."""
        return self._carry_lut

    def storage_image(self) -> int:
        """Fault-free stored bits across the whole site space.

        Used by the manufacturing-defect model: a stuck-at cell is
        exactly equivalent to a permanent XOR against this image.
        (For the ``hamming-gate`` scheme the decoder-gate sites carry no
        static content and contribute zeros.)
        """
        image = 0
        for i in range(self._width):
            image |= self._result_lut.storage << self._result_segments[i].offset
            image |= self._carry_lut.storage << self._carry_segments[i].offset
        return image

    def static_site_mask(self) -> int:
        """Sites holding static storage (LUT bit strings).

        Everything except the ``hamming-gate`` scheme's decoder gate
        nodes, which are combinational logic rather than memory cells.
        """
        result_static = bit_length_mask(
            getattr(self._result_lut, "storage_bits", self._result_lut.total_bits)
        )
        carry_static = bit_length_mask(
            getattr(self._carry_lut, "storage_bits", self._carry_lut.total_bits)
        )
        mask = 0
        for i in range(self._width):
            mask |= result_static << self._result_segments[i].offset
            mask |= carry_static << self._carry_segments[i].offset
        return mask

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        self._check_operands(a, b)
        opcode = Opcode.from_int(op)
        internal = INTERNAL_OPCODE[opcode]
        op_addr = internal << 3

        value = 0
        carry = 0
        result_lut = self._result_lut
        carry_lut = self._carry_lut
        for i in range(self._width):
            address = (
                ((a >> i) & 1)
                | (((b >> i) & 1) << 1)
                | (carry << 2)
                | op_addr
            )
            r_fault = self._result_segments[i].extract(fault_mask)
            c_fault = self._carry_segments[i].extract(fault_mask)
            # Addresses assembled from single bits are in range by
            # construction; use the pre-validated read.
            bit = result_lut.read_unchecked(address, r_fault)
            carry = carry_lut.read_unchecked(address, c_fault)
            value |= bit << i
        return ALUResult(value=value, carry=carry)
