"""The twelve named ALU variants of paper Table 2.

Variant names decompose as ``alu`` + module level + bit level:

* module level: ``n`` = none, ``t`` = time redundancy, ``s`` = space
  redundancy;
* bit level: ``cmos`` = conventional gates, ``h`` = Hamming-coded LUTs,
  ``n`` = uncoded LUTs, ``s`` = triplicated-string LUTs.

:func:`build_alu` constructs any variant; ``TABLE2_SITE_COUNTS`` records the
paper's published fault-site counts, which the construction reproduces
exactly (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.alu.base import FaultableUnit
from repro.alu.cmos import CMOSALU
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU, TimeRedundantALU
from repro.alu.voters import make_voter

#: Paper Table 2: potential fault-injection points per implementation.
TABLE2_SITE_COUNTS: Dict[str, int] = {
    "aluncmos": 192,
    "alunh": 672,
    "alunn": 512,
    "aluns": 1536,
    "aluscmos": 657,
    "alush": 2205,
    "alusn": 1680,
    "aluss": 5040,
    "alutcmos": 684,
    "aluth": 2232,
    "alutn": 1707,
    "aluts": 5067,
}

#: Bit-level technique suffix -> LUT coding scheme ("cmos" is special-cased).
_BIT_LEVEL: Dict[str, str] = {
    "cmos": "cmos",
    "h": "hamming",
    "n": "none",
    "s": "tmr",
}

_BIT_LEVEL_LABEL: Dict[str, str] = {
    "cmos": "conventional CMOS gates",
    "hamming": "Hamming information-code lookup tables",
    "none": "no-code lookup tables",
    "tmr": "triplicated bit string lookup tables",
}

_MODULE_LABEL: Dict[str, str] = {
    "n": "no module-level redundancy",
    "t": "module-level time redundancy (three serial passes)",
    "s": "module-level space redundancy (three concurrent copies)",
}


@dataclass(frozen=True)
class VariantSpec:
    """Static description of one Table 2 ALU variant."""

    name: str
    bit_level: str        # "cmos", "hamming", "none", or "tmr"
    module_level: str     # "n", "t", or "s"
    expected_sites: int
    description: str

    @property
    def uses_lut(self) -> bool:
        """True for NanoBox (lookup-table) variants."""
        return self.bit_level != "cmos"

    @property
    def has_module_redundancy(self) -> bool:
        return self.module_level != "n"


def _parse_name(name: str) -> Tuple[str, str]:
    """Split a Table 2 name into (module suffix, bit-level scheme)."""
    if not name.startswith("alu") or len(name) < 5:
        raise KeyError(f"unknown ALU variant {name!r}")
    module = name[3]
    bit_suffix = name[4:]
    if module not in _MODULE_LABEL or bit_suffix not in _BIT_LEVEL:
        raise KeyError(
            f"unknown ALU variant {name!r}; valid: {', '.join(variant_names())}"
        )
    return module, _BIT_LEVEL[bit_suffix]


def variant_names() -> Tuple[str, ...]:
    """All twelve Table 2 variant names, in the paper's table order."""
    return tuple(TABLE2_SITE_COUNTS)


def variant_spec(name: str) -> VariantSpec:
    """Return the static description of a named variant."""
    module, bit_level = _parse_name(name)
    description = (
        f"{_BIT_LEVEL_LABEL[bit_level]} with {_MODULE_LABEL[module]}"
    )
    return VariantSpec(
        name=name,
        bit_level=bit_level,
        module_level=module,
        expected_sites=TABLE2_SITE_COUNTS[name],
        description=description,
    )


def _core_factory(bit_level: str) -> Callable[[], FaultableUnit]:
    if bit_level == "cmos":
        return CMOSALU
    return lambda: NanoBoxALU(scheme=bit_level)


def build_alu(name: str) -> FaultableUnit:
    """Construct a Table 2 ALU variant by its paper name.

    The returned unit's ``site_count`` equals the paper's published count
    for every variant.

    >>> build_alu("aluss").site_count
    5040
    """
    module, bit_level = _parse_name(name)
    core_factory = _core_factory(bit_level)
    if module == "n":
        return SimplexALU(core_factory(), name=name)
    voter = make_voter(bit_level)
    if module == "s":
        return SpaceRedundantALU(core_factory, voter, name=name)
    return TimeRedundantALU(core_factory, voter, name=name)


def build_all() -> Dict[str, FaultableUnit]:
    """Construct all twelve variants keyed by name."""
    return {name: build_alu(name) for name in variant_names()}
