"""ALU interface, opcodes, and result bundle.

Paper Table 1 defines the four-instruction ISA of the simple processor-cell
ALU: AND (000), OR (001), XOR (010), ADD (111), over two 8-bit operands.
Internally the datapath carries a 9-bit *bundle*: the 8 result bits plus the
final carry flag; the module-level voter votes all nine bits and the
time-redundant configurations store three 9-bit inter-operation results
(the "+27 sites" visible in Table 2's time-redundancy rows).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.faults.sites import SiteSpace

#: Operand / result width in bits.
RESULT_BITS = 8

#: Width of the voted result bundle: 8 result bits + 1 carry flag.
BUNDLE_BITS = RESULT_BITS + 1

_RESULT_MASK = (1 << RESULT_BITS) - 1


class Opcode(enum.IntEnum):
    """The Table 1 instruction set (3-bit architectural opcodes)."""

    AND = 0b000
    OR = 0b001
    XOR = 0b010
    ADD = 0b111

    @classmethod
    def from_int(cls, value: int) -> "Opcode":
        """Validate and convert a raw 3-bit opcode field."""
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"invalid opcode {value:#05b}; valid: "
                + ", ".join(f"{m.name}={m.value:#05b}" for m in cls)
            ) from None


#: Internal 2-bit encoding used by the NanoBox slice lookup tables.  The
#: architectural 3-bit opcode is compressed by (fault-free) control logic so
#: each slice LUT needs only five inputs (a, b, carry, op1, op0) and hence a
#: 32-entry truth table.
INTERNAL_OPCODE = {
    Opcode.AND: 0b00,
    Opcode.OR: 0b01,
    Opcode.XOR: 0b10,
    Opcode.ADD: 0b11,
}


@dataclass(frozen=True)
class ALUResult:
    """An ALU's 9-bit output bundle: 8-bit value + carry flag."""

    value: int
    carry: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _RESULT_MASK:
            raise ValueError(f"value {self.value} out of 8-bit range")
        if self.carry not in (0, 1):
            raise ValueError(f"carry must be 0 or 1, got {self.carry}")

    @property
    def bundle(self) -> int:
        """Pack value and carry into the 9-bit voted bundle."""
        return self.value | (self.carry << RESULT_BITS)

    @classmethod
    def from_bundle(cls, bundle: int) -> "ALUResult":
        """Unpack a 9-bit bundle."""
        if not 0 <= bundle < (1 << BUNDLE_BITS):
            raise ValueError(f"bundle {bundle} out of {BUNDLE_BITS}-bit range")
        return cls(value=bundle & _RESULT_MASK, carry=(bundle >> RESULT_BITS) & 1)


class FaultableUnit(ABC):
    """A compute unit whose storage/logic exposes fault-injection sites.

    This is the paper's *NanoBox*: "a black box entity that uses a
    specified fault-tolerance technique".  Each unit owns a
    :class:`~repro.faults.sites.SiteSpace` describing its sites; the grid,
    the campaign runner, and the attribution tooling all speak this
    interface regardless of what is inside the box.
    """

    @property
    @abstractmethod
    def site_space(self) -> SiteSpace:
        """The unit's fault-site layout."""

    @property
    def site_count(self) -> int:
        """Total fault-injection sites (paper Table 2's middle column)."""
        return self.site_space.total_sites

    @abstractmethod
    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        """Execute one instruction under an injected fault mask.

        Args:
            op: 3-bit architectural opcode (see :class:`Opcode`).
            a: first 8-bit operand.
            b: second 8-bit operand.
            fault_mask: integer over ``site_count`` bits; set bits flip the
                corresponding storage bit / gate node for this computation.
        """

    def _check_operands(self, a: int, b: int) -> None:
        if not 0 <= a <= _RESULT_MASK:
            raise ValueError(f"operand a={a} out of 8-bit range")
        if not 0 <= b <= _RESULT_MASK:
            raise ValueError(f"operand b={b} out of 8-bit range")
