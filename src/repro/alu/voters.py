"""Module-level majority voters.

The time- and space-redundant ALUs feed their three 9-bit result bundles
into a voter.  Crucially, the paper models the voter as fault-prone: "we do
model module-level error detector and corrector faults by using a lookup
table for the module voter.  This module voter lookup table, as with the
lookup tables within the ALU, has errors injected on its bit string"
(Section 4).  The CMOS variants instead use a gate-level voter whose nodes
take faults.

Voter geometry (calibrated to Table 2, see DESIGN.md):

* LUT voter -- nine 4-input LUTs ``(x_i, y_i, z_i, enable)`` of 16 entries:
  144 uncoded sites, 189 Hamming (16+5), 432 triplicated.
* CMOS voter -- nine 9-node majority cells: 81 sites.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List

from repro.alu.base import BUNDLE_BITS
from repro.coding.bits import bit_length_mask
from repro.faults.sites import Segment, SiteSpace
from repro.logic.builders import CMOS_VOTER_NODE_COUNT, build_cmos_voter
from repro.lut.coded import CodedLUT
from repro.lut.table import TruthTable


def _voter_bit_function(x: int, y: int, z: int, enable: int) -> int:
    """Truth function of one voter LUT: enabled 3-way majority."""
    if not enable:
        return 0
    return (x & y) | (y & z) | (x & z)


def voter_truth_table() -> TruthTable:
    """The 16-entry truth table shared by the nine voter LUTs."""
    return TruthTable.from_function(4, _voter_bit_function)


class Voter(ABC):
    """Majority voter over three ``BUNDLE_BITS``-wide result bundles."""

    @property
    @abstractmethod
    def site_space(self) -> SiteSpace:
        """Fault-site layout of the voter itself."""

    @property
    def site_count(self) -> int:
        return self.site_space.total_sites

    @abstractmethod
    def vote(self, x: int, y: int, z: int, fault_mask: int = 0) -> int:
        """Return the bitwise majority of three bundles under faults."""


class LUTVoter(Voter):
    """Nine error-coded lookup tables, one per voted bundle bit.

    The fourth LUT input is a compute-mode enable; in these experiments it
    is tied high, but it is what makes each table 16 entries (and hence the
    Table 2 voter site counts).
    """

    def __init__(self, scheme: str = "none", width: int = BUNDLE_BITS) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self._scheme = scheme
        self._width = width
        self._lut = CodedLUT(voter_truth_table(), scheme)
        self._space = SiteSpace(f"lut_voter[{scheme}]")
        self._segments: List[Segment] = [
            self._space.add(f"bit{i}", self._lut.total_bits) for i in range(width)
        ]

    @property
    def scheme(self) -> str:
        """Bit-level coding scheme of the voter LUTs."""
        return self._scheme

    @property
    def width(self) -> int:
        """Number of voted bundle bits."""
        return self._width

    @property
    def lut(self) -> CodedLUT:
        """The coded table shared by the voter bits (batched-engine hook)."""
        return self._lut

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def storage_image(self) -> int:
        """Fault-free stored bits of the nine voter tables."""
        image = 0
        for segment in self._segments:
            image |= self._lut.storage << segment.offset
        return image

    def static_site_mask(self) -> int:
        """All voter sites are static LUT storage."""
        return bit_length_mask(self.site_count)

    def vote(self, x: int, y: int, z: int, fault_mask: int = 0) -> int:
        limit = bit_length_mask(self._width)
        for name, value in (("x", x), ("y", y), ("z", z)):
            if value < 0 or value > limit:
                raise ValueError(
                    f"bundle {name}={value} out of {self._width}-bit range"
                )
        out = 0
        for i in range(self._width):
            address = (
                ((x >> i) & 1)
                | (((y >> i) & 1) << 1)
                | (((z >> i) & 1) << 2)
                | (1 << 3)  # enable tied high during compute mode
            )
            fault_word = self._segments[i].extract(fault_mask)
            # In-range by construction: use the pre-validated read.
            out |= self._lut.read_unchecked(address, fault_word) << i
        return out


class CMOSVoter(Voter):
    """Gate-level majority voter for the CMOS baselines (81 nodes)."""

    def __init__(self, width: int = BUNDLE_BITS) -> None:
        self._width = width
        self._netlist = build_cmos_voter(width)
        self._space = SiteSpace("cmos_voter")
        self._space.add("gates", self._netlist.node_count)
        if width == BUNDLE_BITS:
            assert self._netlist.node_count == CMOS_VOTER_NODE_COUNT

    @property
    def netlist(self):
        """The underlying gate netlist."""
        return self._netlist

    @property
    def width(self) -> int:
        """Number of voted bundle bits."""
        return self._width

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def vote(self, x: int, y: int, z: int, fault_mask: int = 0) -> int:
        inputs: Dict[str, int] = {}
        for i in range(self._width):
            inputs[f"x{i}"] = (x >> i) & 1
            inputs[f"y{i}"] = (y >> i) & 1
            inputs[f"z{i}"] = (z >> i) & 1
        outputs = self._netlist.evaluate_bus(inputs, ("v",), fault_mask)
        return outputs["v"]


def make_voter(kind: str, width: int = BUNDLE_BITS) -> Voter:
    """Build a voter by bit-level technique name.

    ``"cmos"`` selects the gate-level voter; any LUT coding scheme name
    (``"none"``, ``"hamming"``, ``"tmr"``, ...) selects a LUT voter coded
    with that scheme -- the paper pairs each NanoBox ALU with a voter built
    the same way as the ALU's own tables.
    """
    if kind == "cmos":
        return CMOSVoter(width)
    return LUTVoter(scheme=kind, width=width)
