"""Golden reference ALU.

The fault-injection experiments score each implementation against the
arithmetically exact result; this module is that oracle.  It is also a
:class:`~repro.alu.base.FaultableUnit` with zero fault sites so it can be
dropped anywhere a faultable ALU is expected (e.g. as a "perfect device"
baseline series in sweeps).
"""

from __future__ import annotations

from repro.alu.base import ALUResult, FaultableUnit, Opcode, RESULT_BITS
from repro.faults.sites import SiteSpace

_MASK = (1 << RESULT_BITS) - 1


def reference_compute(op: int, a: int, b: int) -> ALUResult:
    """Compute the exact Table 1 semantics for one instruction."""
    opcode = Opcode.from_int(op)
    if not 0 <= a <= _MASK or not 0 <= b <= _MASK:
        raise ValueError(f"operands ({a}, {b}) out of 8-bit range")
    if opcode is Opcode.AND:
        return ALUResult(a & b, 0)
    if opcode is Opcode.OR:
        return ALUResult(a | b, 0)
    if opcode is Opcode.XOR:
        return ALUResult(a ^ b, 0)
    total = a + b
    return ALUResult(total & _MASK, (total >> RESULT_BITS) & 1)


class ReferenceALU(FaultableUnit):
    """Fault-free oracle ALU (zero injection sites)."""

    def __init__(self) -> None:
        self._space = SiteSpace("reference_alu")

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        if fault_mask:
            raise ValueError("the reference ALU has no fault sites")
        return reference_compute(op, a, b)
