"""The NanoBox ALU family (paper Table 2).

Twelve ALU implementations crossing four bit-level techniques (conventional
CMOS gates, Hamming-coded LUTs, uncoded LUTs, triplicated-string LUTs) with
three module-level techniques (none, time redundancy, space redundancy):

======== ============== ================== =====
name     bit level      module level       sites
======== ============== ================== =====
aluncmos CMOS gates     none                 192
alunh    Hamming LUTs   none                 672
alunn    no-code LUTs   none                 512
aluns    TMR LUTs       none                1536
aluscmos CMOS gates     space (3 copies)     657
alush    Hamming LUTs   space               2205
alusn    no-code LUTs   space               1680
aluss    TMR LUTs       space               5040
alutcmos CMOS gates     time (3 passes)      684
aluth    Hamming LUTs   time                2232
alutn    no-code LUTs   time                1707
aluts    TMR LUTs       time                5067
======== ============== ================== =====

Use :func:`build_alu` to construct any variant by its paper name.
"""

from repro.alu.base import ALUResult, FaultableUnit, Opcode, RESULT_BITS, BUNDLE_BITS
from repro.alu.reference import ReferenceALU, reference_compute
from repro.alu.nanobox import NanoBoxALU
from repro.alu.cmos import CMOSALU
from repro.alu.batched import BatchedEngine, BatchedUnit, build_batched_unit
from repro.alu.voters import CMOSVoter, LUTVoter, make_voter
from repro.alu.redundancy import (
    SimplexALU,
    SpaceRedundantALU,
    TimeRedundantALU,
)
from repro.alu.variants import (
    TABLE2_SITE_COUNTS,
    VariantSpec,
    build_alu,
    variant_names,
    variant_spec,
)

__all__ = [
    "ALUResult",
    "BUNDLE_BITS",
    "BatchedEngine",
    "BatchedUnit",
    "CMOSALU",
    "CMOSVoter",
    "FaultableUnit",
    "LUTVoter",
    "NanoBoxALU",
    "Opcode",
    "RESULT_BITS",
    "ReferenceALU",
    "SimplexALU",
    "SpaceRedundantALU",
    "TABLE2_SITE_COUNTS",
    "TimeRedundantALU",
    "VariantSpec",
    "build_alu",
    "build_batched_unit",
    "make_voter",
    "reference_compute",
    "variant_names",
    "variant_spec",
]
