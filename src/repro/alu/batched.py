"""Batched (vectorized) evaluation of the Table 2 ALU family.

Mirrors the scalar object graph -- NanoBox slice network or CMOS gate
netlist core, module-level redundancy wrappers, LUT or gate voter -- but
evaluates a whole workload's instructions against a whole trial's fault
masks in NumPy, using the vectorized coded-LUT kernels of
:mod:`repro.lut.batched` and the compiled netlist evaluator of
:mod:`repro.logic.batched`.

Every node consumes its own slice of the ``(n, site_count)`` fault-bit
array -- columns correspond one-to-one to the scalar path's
:class:`~repro.faults.sites.Segment` layout -- and produces the ``(n,)``
array of 9-bit result bundles.  The ripple carry forces a loop over the
eight slices (and the netlist a loop over its gates), but each iteration
now retires *every* instruction of the trial at once instead of one LUT
read or one gate.

:func:`build_batched_unit` returns ``None`` for units it cannot vectorize
(gate-level Hamming decoders, generic block codes, defect wrappers); the
campaign engine then falls back to the scalar path, so batched campaigns
work -- and stay bit-identical -- for every registered variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.alu.base import BUNDLE_BITS, INTERNAL_OPCODE, RESULT_BITS
from repro.alu.cmos import CMOSALU
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import (
    MODULE_COPIES,
    SimplexALU,
    SpaceRedundantALU,
    TimeRedundantALU,
)
from repro.alu.voters import CMOSVoter, LUTVoter
from repro.logic.batched import BatchedNetlist
from repro.lut.batched import build_batched_lut

#: Architectural opcode -> internal 2-bit code, as a vector lookup table
#: (-1 marks invalid opcodes).
_INTERNAL_LUT = np.full(8, -1, dtype=np.int64)
for _opcode, _internal in INTERNAL_OPCODE.items():
    _INTERNAL_LUT[int(_opcode)] = _internal

_RESULT_MASK = (1 << RESULT_BITS) - 1


class BatchedUnit:
    """A vectorized compute node bound to a local fault-site layout."""

    def bundles(
        self,
        ops: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        fault_bits: np.ndarray,
    ) -> np.ndarray:
        """Evaluate the batch; ``fault_bits`` is this node's local slice.

        ``ops`` carries the *architectural* 3-bit opcodes (already
        validated); each core maps them to its own encoding.
        """
        raise NotImplementedError


class _BatchedNanoBox(BatchedUnit):
    """The eight-slice ripple network over vectorized coded-LUT reads."""

    def __init__(self, alu: NanoBoxALU) -> None:
        self._width = alu.width
        self._result_kernel = build_batched_lut(alu.result_lut)
        self._carry_kernel = build_batched_lut(alu.carry_lut)
        if self._result_kernel is None or self._carry_kernel is None:
            raise _Unvectorizable
        space = alu.site_space
        self._result_offsets = [
            space.segment(f"slice{i}.result_lut").offset
            for i in range(self._width)
        ]
        self._carry_offsets = [
            space.segment(f"slice{i}.carry_lut").offset
            for i in range(self._width)
        ]
        self._lut_bits = self._result_kernel.total_bits

    def bundles(self, ops, a, b, fault_bits):
        n = a.shape[0]
        op_addr = _INTERNAL_LUT[ops] << 3
        carry = np.zeros(n, dtype=np.int64)
        value = np.zeros(n, dtype=np.int64)
        lut_bits = self._lut_bits
        for i in range(self._width):
            address = (
                ((a >> i) & 1) | (((b >> i) & 1) << 1) | (carry << 2) | op_addr
            )
            r_off = self._result_offsets[i]
            c_off = self._carry_offsets[i]
            bit = self._result_kernel.read_batch(
                address, fault_bits[:, r_off : r_off + lut_bits]
            )
            carry = self._carry_kernel.read_batch(
                address, fault_bits[:, c_off : c_off + lut_bits]
            ).astype(np.int64)
            value |= bit.astype(np.int64) << i
        return value | (carry << RESULT_BITS)


class _BatchedCMOS(BatchedUnit):
    """The gate-netlist baseline ALU, compiled for batch evaluation."""

    def __init__(self, alu: CMOSALU) -> None:
        self._width = alu.width
        self._netlist = BatchedNetlist(alu.netlist)

    def bundles(self, ops, a, b, fault_bits):
        inputs: Dict[str, np.ndarray] = {}
        for i in range(self._width):
            inputs[f"a{i}"] = ((a >> i) & 1).astype(np.uint8)
            inputs[f"b{i}"] = ((b >> i) & 1).astype(np.uint8)
        for j in range(3):
            inputs[f"op{j}"] = ((ops >> j) & 1).astype(np.uint8)
        outputs = self._netlist.evaluate_bus(inputs, ("out",), fault_bits)
        return outputs["out"] | (outputs["carry"] << RESULT_BITS)


class _BatchedLUTVoter:
    """Vectorized nine-table majority voter (enable tied high)."""

    def __init__(self, voter: LUTVoter) -> None:
        self._kernel = build_batched_lut(voter.lut)
        if self._kernel is None:
            raise _Unvectorizable
        self._width = voter.width
        space = voter.site_space
        self._offsets = [
            space.segment(f"bit{i}").offset for i in range(self._width)
        ]
        self._lut_bits = self._kernel.total_bits

    def vote(self, x, y, z, fault_bits):
        out = np.zeros(x.shape[0], dtype=np.int64)
        lut_bits = self._lut_bits
        for i in range(self._width):
            address = (
                ((x >> i) & 1)
                | (((y >> i) & 1) << 1)
                | (((z >> i) & 1) << 2)
                | (1 << 3)  # enable tied high during compute mode
            )
            off = self._offsets[i]
            bit = self._kernel.read_batch(
                address, fault_bits[:, off : off + lut_bits]
            )
            out |= bit.astype(np.int64) << i
        return out


class _BatchedCMOSVoter:
    """Vectorized gate-level majority voter (nine 9-node cells)."""

    def __init__(self, voter: CMOSVoter) -> None:
        self._width = voter.width
        self._netlist = BatchedNetlist(voter.netlist)

    def vote(self, x, y, z, fault_bits):
        inputs: Dict[str, np.ndarray] = {}
        for i in range(self._width):
            inputs[f"x{i}"] = ((x >> i) & 1).astype(np.uint8)
            inputs[f"y{i}"] = ((y >> i) & 1).astype(np.uint8)
            inputs[f"z{i}"] = ((z >> i) & 1).astype(np.uint8)
        outputs = self._netlist.evaluate_bus(inputs, ("v",), fault_bits)
        return outputs["v"]


class _BatchedSimplex(BatchedUnit):
    def __init__(self, alu: SimplexALU, core: BatchedUnit) -> None:
        self._core = core
        segment = alu.site_space.segment("core")
        self._offset, self._size = segment.offset, segment.size

    def bundles(self, ops, a, b, fault_bits):
        local = fault_bits[:, self._offset : self._offset + self._size]
        return self._core.bundles(ops, a, b, local)


class _BatchedSpaceRedundant(BatchedUnit):
    def __init__(
        self,
        alu: SpaceRedundantALU,
        core: BatchedUnit,
        voter,
    ) -> None:
        self._core = core
        self._voter = voter
        space = alu.site_space
        self._copy_spans = [
            (seg.offset, seg.size)
            for seg in (
                space.segment(f"copy{i}") for i in range(MODULE_COPIES)
            )
        ]
        voter_seg = space.segment("voter")
        self._voter_span = (voter_seg.offset, voter_seg.size)

    def bundles(self, ops, a, b, fault_bits):
        copies = [
            self._core.bundles(
                ops, a, b, fault_bits[:, off : off + size]
            )
            for off, size in self._copy_spans
        ]
        v_off, v_size = self._voter_span
        return self._voter.vote(
            copies[0], copies[1], copies[2],
            fault_bits[:, v_off : v_off + v_size],
        )


class _BatchedTimeRedundant(BatchedUnit):
    def __init__(
        self,
        alu: TimeRedundantALU,
        core: BatchedUnit,
        voter,
    ) -> None:
        self._core = core
        self._voter = voter
        space = alu.site_space
        self._pass_spans = [
            (seg.offset, seg.size)
            for seg in (
                space.segment(f"pass{i}") for i in range(MODULE_COPIES)
            )
        ]
        voter_seg = space.segment("voter")
        self._voter_span = (voter_seg.offset, voter_seg.size)
        self._storage_offsets = [
            space.segment(f"stored{i}").offset for i in range(MODULE_COPIES)
        ]
        self._bundle_powers = (1 << np.arange(BUNDLE_BITS, dtype=np.int64))

    def bundles(self, ops, a, b, fault_bits):
        stored: List[np.ndarray] = []
        for (off, size), reg_off in zip(
            self._pass_spans, self._storage_offsets
        ):
            bundle = self._core.bundles(
                ops, a, b, fault_bits[:, off : off + size]
            )
            # Bit flips in the holding register corrupt the stored copy.
            register = (
                fault_bits[:, reg_off : reg_off + BUNDLE_BITS].astype(np.int64)
                * self._bundle_powers[None, :]
            ).sum(axis=1)
            stored.append(bundle ^ register)
        v_off, v_size = self._voter_span
        return self._voter.vote(
            stored[0], stored[1], stored[2],
            fault_bits[:, v_off : v_off + v_size],
        )


class _Unvectorizable(Exception):
    """Internal signal: this unit has no batched form; fall back to scalar."""


class BatchedEngine:
    """Campaign-facing wrapper: whole-unit batched instruction evaluation."""

    def __init__(self, root: BatchedUnit, site_count: int) -> None:
        self._root = root
        self._site_count = site_count

    @property
    def site_count(self) -> int:
        return self._site_count

    def values(
        self,
        ops: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        fault_bits: np.ndarray,
    ) -> np.ndarray:
        """8-bit result values for a batch of instructions.

        Args:
            ops: ``(n,)`` architectural 3-bit opcodes.
            a, b: ``(n,)`` 8-bit operands.
            fault_bits: ``(n, site_count)`` 0/1 fault flags, one row per
                instruction (the trial's mask stream).
        """
        ops = np.asarray(ops, dtype=np.int64)
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if np.any((ops < 0) | (ops > 7)):
            raise ValueError("opcode out of 3-bit range in batch")
        internal = _INTERNAL_LUT[ops]
        if np.any(internal < 0):
            bad = int(ops[internal < 0][0])
            raise ValueError(f"invalid opcode {bad:#05b} in batch")
        if np.any((a < 0) | (a > _RESULT_MASK)):
            raise ValueError("operand a out of 8-bit range in batch")
        if np.any((b < 0) | (b > _RESULT_MASK)):
            raise ValueError("operand b out of 8-bit range in batch")
        if fault_bits.shape != (ops.shape[0], self._site_count):
            raise ValueError(
                f"fault_bits shape {fault_bits.shape} != "
                f"({ops.shape[0]}, {self._site_count})"
            )
        bundles = self._root.bundles(ops, a, b, fault_bits)
        return bundles & _RESULT_MASK


def _build_core(core) -> BatchedUnit:
    if isinstance(core, NanoBoxALU):
        return _BatchedNanoBox(core)
    if isinstance(core, CMOSALU):
        return _BatchedCMOS(core)
    raise _Unvectorizable


def _build_voter(voter):
    if isinstance(voter, LUTVoter):
        return _BatchedLUTVoter(voter)
    if isinstance(voter, CMOSVoter):
        return _BatchedCMOSVoter(voter)
    raise _Unvectorizable


def build_batched_unit(unit) -> Optional[BatchedEngine]:
    """Vectorize a campaign compute unit, or return ``None`` to fall back.

    Supported: :class:`NanoBoxALU` cores whose coding schemes have
    batched kernels and :class:`CMOSALU` gate-netlist cores, under any of
    the Simplex / Space / Time redundancy wrappers with LUT or CMOS
    voters -- i.e. all twelve Table 2 variants.  Anything else
    (gate-level Hamming decoders, generic block-code schemes, defect
    wrappers) signals scalar fallback.
    """
    try:
        if isinstance(unit, SimplexALU):
            root: BatchedUnit = _BatchedSimplex(unit, _build_core(unit.core))
        elif isinstance(unit, SpaceRedundantALU):
            root = _BatchedSpaceRedundant(
                unit, _build_core(unit.core), _build_voter(unit.voter)
            )
        elif isinstance(unit, TimeRedundantALU):
            root = _BatchedTimeRedundant(
                unit, _build_core(unit.core), _build_voter(unit.voter)
            )
        else:
            root = _build_core(unit)
    except _Unvectorizable:
        return None
    return BatchedEngine(root, unit.site_count)
