"""Conventional CMOS baseline ALU (paper's ``alu*cmos`` family).

"As a baseline for comparison, we also model a traditional CMOS ALU that
incorporates no bit-level redundancy and does not use lookup tables for its
logic" (Section 4).  Faults land on gate-output nodes (Figure 6b) rather
than on stored bits.
"""

from __future__ import annotations

from typing import Dict

from repro.alu.base import ALUResult, FaultableUnit, Opcode, RESULT_BITS
from repro.faults.sites import SiteSpace
from repro.logic.builders import CMOS_ALU_NODE_COUNT, build_cmos_alu
from repro.logic.netlist import Netlist


class CMOSALU(FaultableUnit):
    """Gate-netlist ALU with per-node fault injection.

    For the paper's 8-bit configuration the netlist has exactly 192 gate
    nodes (Table 2, ``aluncmos``).
    """

    def __init__(self, width: int = RESULT_BITS) -> None:
        self._width = width
        self._netlist: Netlist = build_cmos_alu(width)
        self._space = SiteSpace("cmos_alu")
        self._space.add("gates", self._netlist.node_count)
        if width == RESULT_BITS:
            assert self._netlist.node_count == CMOS_ALU_NODE_COUNT

    @property
    def width(self) -> int:
        """Operand width in bits."""
        return self._width

    @property
    def netlist(self) -> Netlist:
        """The underlying gate netlist (one fault site per gate output)."""
        return self._netlist

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        self._check_operands(a, b)
        opcode = Opcode.from_int(op)
        inputs: Dict[str, int] = {}
        for i in range(self._width):
            inputs[f"a{i}"] = (a >> i) & 1
            inputs[f"b{i}"] = (b >> i) & 1
        for j in range(3):
            inputs[f"op{j}"] = (int(opcode) >> j) & 1
        outputs = self._netlist.evaluate_bus(inputs, ("out",), fault_mask)
        return ALUResult(value=outputs["out"], carry=outputs["carry"])
