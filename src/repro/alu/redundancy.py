"""Module-level redundancy wrappers (paper Section 2.2).

Three configurations wrap an ALU core:

* :class:`SimplexALU` -- no module-level fault tolerance (``alun*``).
* :class:`SpaceRedundantALU` -- three concurrent ALU copies feeding a
  majority voter (``alus*``).
* :class:`TimeRedundantALU` -- one ALU computing the instruction three
  times; each pass draws independent transient faults (the mask is
  regenerated per computation), the three 9-bit inter-operation results are
  *stored* in fault-prone registers, then voted (``alut*``).  The 27
  storage sites are the constant "+27" between Table 2's time and space
  rows.
"""

from __future__ import annotations

from typing import Callable, List

from repro.alu.base import ALUResult, BUNDLE_BITS, FaultableUnit
from repro.alu.voters import Voter
from repro.faults.sites import Segment, SiteSpace

#: Number of redundant executions / copies at the module level.
MODULE_COPIES = 3


def _storage_image_of(component) -> int:
    """Stored-bit image of a component, or 0 when it has none."""
    image_fn = getattr(component, "storage_image", None)
    return image_fn() if image_fn is not None else 0


def _static_mask_of(component) -> int:
    """Static-storage site mask of a component, or 0 when dynamic."""
    mask_fn = getattr(component, "static_site_mask", None)
    return mask_fn() if mask_fn is not None else 0


class SimplexALU(FaultableUnit):
    """Pass-through wrapper: one core, no module-level redundancy.

    Exists so all twelve Table 2 variants share one interface and one
    site-space layout convention.
    """

    def __init__(self, core: FaultableUnit, name: str = "simplex") -> None:
        self._core = core
        self._space = SiteSpace(name)
        self._core_segment = self._space.add("core", core.site_count)

    @property
    def core(self) -> FaultableUnit:
        """The wrapped ALU core."""
        return self._core

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        return self._core.compute(
            op, a, b, fault_mask=self._core_segment.extract(fault_mask)
        )

    def storage_image(self) -> int:
        """Stored-bit image (the wrapped core's, at offset zero)."""
        return _storage_image_of(self._core)

    def static_site_mask(self) -> int:
        """Static-storage sites (the wrapped core's)."""
        return _static_mask_of(self._core)


class SpaceRedundantALU(FaultableUnit):
    """Three concurrent ALU copies voted by a fault-prone majority voter.

    The three copies are physically identical, so they are modelled by one
    core evaluated under three *independent* fault-mask slices -- exactly
    equivalent to three instances, since evaluation is pure.

    Site layout: ``copy0 | copy1 | copy2 | voter``.
    """

    def __init__(
        self,
        core_factory: Callable[[], FaultableUnit],
        voter: Voter,
        name: str = "space_redundant",
    ) -> None:
        self._core = core_factory()
        self._voter = voter
        self._space = SiteSpace(name)
        self._copy_segments: List[Segment] = [
            self._space.add(f"copy{i}", self._core.site_count)
            for i in range(MODULE_COPIES)
        ]
        self._voter_segment = self._space.add("voter", voter.site_count)

    @property
    def core(self) -> FaultableUnit:
        """The replicated ALU core."""
        return self._core

    @property
    def voter(self) -> Voter:
        """The module-level majority voter."""
        return self._voter

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        bundles = [
            self._core.compute(op, a, b, fault_mask=seg.extract(fault_mask)).bundle
            for seg in self._copy_segments
        ]
        voted = self._voter.vote(
            bundles[0],
            bundles[1],
            bundles[2],
            fault_mask=self._voter_segment.extract(fault_mask),
        )
        return ALUResult.from_bundle(voted)

    def storage_image(self) -> int:
        """Stored bits: one core image per copy plus the voter's."""
        core_image = _storage_image_of(self._core)
        image = 0
        for segment in self._copy_segments:
            image |= core_image << segment.offset
        image |= _storage_image_of(self._voter) << self._voter_segment.offset
        return image

    def static_site_mask(self) -> int:
        """Static sites: each copy's plus the voter's."""
        core_mask = _static_mask_of(self._core)
        mask = 0
        for segment in self._copy_segments:
            mask |= core_mask << segment.offset
        mask |= _static_mask_of(self._voter) << self._voter_segment.offset
        return mask


class TimeRedundantALU(FaultableUnit):
    """One ALU core computing each instruction three times serially.

    Each pass experiences an independent draw of transient faults (the
    paper regenerates the fault mask per computation), so the core's sites
    appear three times in the site space.  Between passes the 9-bit result
    sits in a fault-prone holding register; all three stored bundles are
    voted at the end.

    Site layout: ``pass0 | pass1 | pass2 | voter | storage`` where storage
    is ``3 x 9 = 27`` register bits.
    """

    def __init__(
        self,
        core_factory: Callable[[], FaultableUnit],
        voter: Voter,
        name: str = "time_redundant",
    ) -> None:
        self._core = core_factory()
        self._voter = voter
        self._space = SiteSpace(name)
        self._pass_segments: List[Segment] = [
            self._space.add(f"pass{i}", self._core.site_count)
            for i in range(MODULE_COPIES)
        ]
        self._voter_segment = self._space.add("voter", voter.site_count)
        self._storage_segments: List[Segment] = [
            self._space.add(f"stored{i}", BUNDLE_BITS)
            for i in range(MODULE_COPIES)
        ]

    @property
    def core(self) -> FaultableUnit:
        """The single, serially reused ALU core."""
        return self._core

    @property
    def voter(self) -> Voter:
        """The module-level majority voter."""
        return self._voter

    @property
    def storage_sites(self) -> int:
        """Fault sites in the inter-operation result registers."""
        return MODULE_COPIES * BUNDLE_BITS

    @property
    def site_space(self) -> SiteSpace:
        return self._space

    def compute(self, op: int, a: int, b: int, fault_mask: int = 0) -> ALUResult:
        stored: List[int] = []
        for pass_seg, store_seg in zip(self._pass_segments, self._storage_segments):
            bundle = self._core.compute(
                op, a, b, fault_mask=pass_seg.extract(fault_mask)
            ).bundle
            # Bit flips in the holding register corrupt the stored copy.
            stored.append(bundle ^ store_seg.extract(fault_mask))
        voted = self._voter.vote(
            stored[0],
            stored[1],
            stored[2],
            fault_mask=self._voter_segment.extract(fault_mask),
        )
        return ALUResult.from_bundle(voted)

    def storage_image(self) -> int:
        """Stored bits: the core image per pass plus the voter's.

        The 27 holding-register sites carry no static content (they hold
        a different value every instruction) and contribute zeros.
        """
        core_image = _storage_image_of(self._core)
        image = 0
        for segment in self._pass_segments:
            image |= core_image << segment.offset
        image |= _storage_image_of(self._voter) << self._voter_segment.offset
        return image

    def static_site_mask(self) -> int:
        """Static sites: passes and voter only -- registers are dynamic,
        so manufacturing defects there are modelled as persistent
        inversions by :class:`~repro.faults.defects.DefectiveUnit`."""
        core_mask = _static_mask_of(self._core)
        mask = 0
        for segment in self._pass_segments:
            mask |= core_mask << segment.offset
        mask |= _static_mask_of(self._voter) << self._voter_segment.offset
        return mask
