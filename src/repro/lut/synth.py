"""Truth-table synthesis helpers.

``synthesize`` tabulates any Python predicate into a :class:`TruthTable`;
``figure1_sum_table`` reconstructs the paper's running example (Figure 1),
a 4-variable sum function implemented as an error-correcting lookup table
instead of discrete gates.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.lut.table import TruthTable


def synthesize(n_inputs: int, fn: Callable[..., int]) -> TruthTable:
    """Tabulate ``fn(bit0, ..., bit_{k-1}) -> 0/1`` into a truth table."""
    return TruthTable.from_function(n_inputs, fn)


def synthesize_word(
    n_inputs: int, fn: Callable[..., int], n_outputs: int
) -> Sequence[TruthTable]:
    """Tabulate a multi-output function into one table per output bit.

    ``fn`` returns an ``n_outputs``-bit integer; output bit ``i`` becomes
    table ``i``.  This is how a conventional multi-bit circuit (paper
    Figure 1a) is mapped onto single-output NanoBox lookup tables.
    """
    if n_outputs <= 0:
        raise ValueError(f"n_outputs must be positive, got {n_outputs}")
    tables = []
    for out_bit in range(n_outputs):
        def column(*bits: int, _out_bit: int = out_bit) -> int:
            return (fn(*bits) >> _out_bit) & 1

        tables.append(TruthTable.from_function(n_inputs, column))
    return tuple(tables)


def figure1_sum_table() -> TruthTable:
    """The paper's Figure 1 example: the sum bit of four added variables.

    Figure 1 shows "a sum function of four variables" first as conventional
    combinational logic, then as a single encoded lookup table.  The sum
    (low) bit of ``a + b + c + d`` is the 4-input odd-parity function.
    """
    return TruthTable.from_function(4, lambda a, b, c, d: (a + b + c + d) & 1)


def figure1_carry_table() -> TruthTable:
    """Companion to :func:`figure1_sum_table`: bit 1 of ``a + b + c + d``."""
    return TruthTable.from_function(4, lambda a, b, c, d: ((a + b + c + d) >> 1) & 1)
