"""Immutable truth tables."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.coding.bits import bit_length_mask, bits_from_int


class TruthTable:
    """A ``k``-input, 1-output logic function stored as a ``2**k``-bit string.

    Bit ``i`` of :attr:`bits` is the function's output for input address
    ``i``, where address bit ``j`` is the value of input ``j``.
    """

    __slots__ = ("_n_inputs", "_bits", "_outputs")

    def __init__(self, n_inputs: int, bits: int) -> None:
        if n_inputs < 0:
            raise ValueError(f"n_inputs must be non-negative, got {n_inputs}")
        size = 1 << n_inputs
        if bits < 0 or bits >> size:
            raise ValueError(
                f"bit string {bits:#x} does not fit a {n_inputs}-input table "
                f"({size} entries)"
            )
        self._n_inputs = n_inputs
        self._bits = bits
        self._outputs: Optional[np.ndarray] = None  # lazy output column

    @classmethod
    def from_function(cls, n_inputs: int, fn: Callable[..., int]) -> "TruthTable":
        """Tabulate ``fn(bit0, bit1, ..., bit_{k-1}) -> 0/1``."""
        bits = 0
        for address in range(1 << n_inputs):
            out = fn(*bits_from_int(address, n_inputs))
            if out not in (0, 1):
                raise ValueError(
                    f"function returned {out!r} at address {address}; expected 0/1"
                )
            bits |= out << address
        return cls(n_inputs, bits)

    @classmethod
    def from_outputs(cls, outputs: Sequence[int]) -> "TruthTable":
        """Build from an explicit output column (length must be ``2**k``)."""
        size = len(outputs)
        n_inputs = size.bit_length() - 1
        if size == 0 or (1 << n_inputs) != size:
            raise ValueError(f"output column length {size} is not a power of two")
        bits = 0
        for address, out in enumerate(outputs):
            if out not in (0, 1):
                raise ValueError(
                    f"output {out!r} at address {address}; expected 0/1"
                )
            bits |= out << address
        return cls(n_inputs, bits)

    @property
    def n_inputs(self) -> int:
        """Number of table inputs ``k``."""
        return self._n_inputs

    @property
    def size(self) -> int:
        """Number of truth-table entries, ``2**k``."""
        return 1 << self._n_inputs

    @property
    def bits(self) -> int:
        """The raw truth-table bit string."""
        return self._bits

    def lookup(self, address: int) -> int:
        """Return the fault-free output for ``address``."""
        if address < 0 or address >= self.size:
            raise IndexError(f"address {address} out of range 0..{self.size - 1}")
        return (self._bits >> address) & 1

    def lookup_unchecked(self, address: int) -> int:
        """Pre-validated fast path of :meth:`lookup`.

        Callers whose addresses are in-range *by construction* (assembled
        from individual 0/1 bits, as the ALU slices and decoders do) skip
        the per-read bounds check of :meth:`lookup`.
        """
        return (self._bits >> address) & 1

    def outputs_array(self) -> np.ndarray:
        """The output column as a read-only uint8 array, cached.

        This is the batched engine's form of the table: fault-free values
        for a vector of addresses are one fancy-indexing gather.
        """
        if self._outputs is None:
            column = np.empty(self.size, dtype=np.uint8)
            for address in range(self.size):
                column[address] = (self._bits >> address) & 1
            column.setflags(write=False)
            self._outputs = column
        return self._outputs

    def __call__(self, *input_bits: int) -> int:
        """Evaluate the table on individual input bits."""
        if len(input_bits) != self._n_inputs:
            raise ValueError(
                f"expected {self._n_inputs} input bits, got {len(input_bits)}"
            )
        address = 0
        for j, bit in enumerate(input_bits):
            if bit not in (0, 1):
                raise ValueError(f"input {j} is {bit!r}, expected 0 or 1")
            address |= bit << j
        # The assembled address is in range by construction.
        return self.lookup_unchecked(address)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self._n_inputs == other._n_inputs and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._n_inputs, self._bits))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mask = bit_length_mask(self.size)
        return f"TruthTable(n_inputs={self._n_inputs}, bits={self._bits & mask:#x})"
