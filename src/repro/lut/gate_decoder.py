"""Hamming LUT with a fault-prone gate-level decoder.

Lifts the paper's idealisation that "faults in the lookup table error
detector or corrector" are not modelled: storage bits *and* the decoder's
gate nodes are fault-injection sites.  Fault-free it is bit-for-bit
equivalent to :class:`~repro.lut.coded.CodedLUT`'s ``hamming`` scheme
(the property tests assert this); under injection, check-logic upsets add
a new error channel the idealised model never sees.
"""

from __future__ import annotations

from typing import Dict

from repro.coding.bits import bit_length_mask
from repro.coding.hamming import HammingCode
from repro.lut.coded import CodedLUT, DEFAULT_BLOCK_SIZE
from repro.lut.table import TruthTable
from repro.logic.hamming_checker import build_hamming_checker


class GateDecodedHammingLUT:
    """Paper-semantics Hamming LUT with decoder gates as fault sites.

    Site layout: the coded storage bits first (identical to the
    ``hamming`` :class:`CodedLUT`), then one shared decoder's gate nodes
    -- a single physical checker serves the LUT's blocks, as reads are
    sequential.
    """

    def __init__(
        self,
        truth: TruthTable,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if truth.size % block_size != 0:
            raise ValueError(
                f"table size {truth.size} is not a multiple of the "
                f"{block_size}-bit block"
            )
        self._storage_lut = CodedLUT(truth, "hamming", block_size)
        self._block_size = block_size
        self._code = HammingCode(block_size)
        self._checker = build_hamming_checker(block_size)
        self._storage_bits = self._storage_lut.total_bits
        self._gate_bits = self._checker.node_count

    # ------------------------------------------------------------ geometry

    @property
    def truth(self) -> TruthTable:
        return self._storage_lut.truth

    @property
    def scheme(self) -> str:
        return "hamming-gate"

    @property
    def n_inputs(self) -> int:
        return self._storage_lut.n_inputs

    @property
    def storage_bits(self) -> int:
        """Stored-bit sites (truth bits + check bits)."""
        return self._storage_bits

    @property
    def decoder_gate_bits(self) -> int:
        """Decoder gate-node sites."""
        return self._gate_bits

    @property
    def total_bits(self) -> int:
        """All fault sites: storage then decoder gates."""
        return self._storage_bits + self._gate_bits

    @property
    def storage(self) -> int:
        """The fault-free stored image (storage sites only)."""
        return self._storage_lut.storage

    # ----------------------------------------------------------------- read

    def read(self, address: int, fault_word: int = 0) -> int:
        """Read one bit with faults on storage and/or decoder gates."""
        if address < 0 or address >= self.truth.size:
            raise IndexError(
                f"address {address} out of range 0..{self.truth.size - 1}"
            )
        return self.read_unchecked(address, fault_word)

    def read_unchecked(self, address: int, fault_word: int = 0) -> int:
        """:meth:`read` without the bounds check (ALU-slice fast path)."""
        storage_fault = fault_word & bit_length_mask(self._storage_bits)
        gate_fault = fault_word >> self._storage_bits

        stored = self._storage_lut.storage ^ storage_fault
        block_index = address // self._block_size
        payload_index = address % self._block_size
        block = (
            stored >> (block_index * self._code.total_bits)
        ) & bit_length_mask(self._code.total_bits)

        inputs: Dict[str, int] = {}
        for i in range(self._code.total_bits):
            inputs[f"s{i}"] = (block >> i) & 1
        position_code = self._code.data_positions[payload_index] + 1
        for j in range(self._code.check_bits):
            inputs[f"p{j}"] = (position_code >> j) & 1
        inputs["raw"] = (block >> self._code.data_positions[payload_index]) & 1

        outputs = self._checker.evaluate(inputs, fault_mask=gate_fault)
        return outputs["out"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GateDecodedHammingLUT(n_inputs={self.n_inputs}, "
            f"storage={self._storage_bits}, gates={self._gate_bits})"
        )


def make_lut(
    truth: TruthTable,
    scheme: str,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """LUT factory: dispatches ``hamming-gate`` to the gate-level decoder
    implementation and every other scheme to :class:`CodedLUT`."""
    if scheme == "hamming-gate":
        return GateDecodedHammingLUT(truth, block_size)
    return CodedLUT(truth, scheme, block_size)
