"""FPGA-style lookup-table substrate.

The fundamental NanoBox logic unit is a lookup table whose truth-table bit
string carries error correction (paper Section 2.1, Figure 1b).  This
package provides:

* :class:`TruthTable` -- an immutable k-input / 1-output truth table;
* :mod:`repro.lut.synth` -- truth-table synthesis from Python predicates;
* :class:`CodedLUT` -- a truth table stored under a bit-level code
  (none / Hamming / triplicated / parity) with per-read fault overlay, the
  unit on which the paper's fault masks land.
"""

from repro.lut.table import TruthTable
from repro.lut.synth import figure1_sum_table, synthesize
from repro.lut.coded import CodedLUT, LUTReadTrace
from repro.lut.batched import BatchedLUT, build_batched_lut

__all__ = [
    "BatchedLUT",
    "CodedLUT",
    "LUTReadTrace",
    "TruthTable",
    "build_batched_lut",
    "figure1_sum_table",
    "synthesize",
]
