"""Vectorized coded-LUT reads over batches of fault words.

The scalar path decodes one ``CodedLUT.read`` at a time with Python big
integers; a fault campaign performs tens of such reads per instruction and
thousands of instructions per figure cell.  This module evaluates a whole
batch of reads -- one per workload instruction -- in NumPy.

The enabling observation: every supported decoder is *XOR-linear in the
fault word*.  The stored image is a valid codeword, so

* the addressed raw bit is ``truth_bit ^ fault_bit_at_data_position``, and
* the Hamming syndrome of ``codeword ^ fault`` equals the syndrome of
  ``fault`` alone (``syndrome`` is GF(2)-linear and zero on codewords).

Hence a batched read reduces to ``truth[addr] ^ flip(addr, fault_bits)``
where ``flip`` is a scheme-specific pure function of the fault bits --
a handful of fancy-indexing gathers per read batch, with no per-draw
big-integer arithmetic at all.

Schemes covered: ``none`` (identity), every replicated layout
(``tmr``/``tmr-interleaved``/``5mr``/``7mr``), and the paper-calibrated
``hamming``/``hamming-fp`` output-corrector semantics.  The remaining
schemes (``hamming-sec``, ``hsiao``, ``parity``, ``hamming-gate``) fall
back to the scalar path: :func:`build_batched_lut` returns ``None`` and the
campaign engine degrades gracefully.

Every kernel is bit-identical to ``CodedLUT.read`` -- asserted exhaustively
by the equivalence test suite.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.coding import HammingCode, IdentityCode, RepetitionCode
from repro.lut.coded import CodedLUT


@lru_cache(maxsize=8)
def _rows(n: int) -> np.ndarray:
    """Cached read-only ``arange(n)`` row index (one per batch length)."""
    rows = np.arange(n, dtype=np.intp)
    rows.setflags(write=False)
    return rows


class BatchedLUT:
    """Vectorized read interface over one coded lookup table.

    ``read_batch(addresses, fault_bits)`` takes an ``(n,)`` int array of
    truth-table addresses and an ``(n, total_bits)`` uint8 0/1 array of
    per-read fault bits (the LUT's slice of each draw's mask) and returns
    the ``(n,)`` uint8 array of delivered bits.
    """

    def __init__(self, lut: CodedLUT) -> None:
        self._truth_out = lut.truth.outputs_array()
        self._total_bits = lut.total_bits

    @property
    def total_bits(self) -> int:
        """Fault sites consumed per read (the LUT's stored width)."""
        return self._total_bits

    def read_batch(
        self, addresses: np.ndarray, fault_bits: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class _IdentityBatchedLUT(BatchedLUT):
    """Uncoded string: the addressed stored bit, faults XOR straight in."""

    def read_batch(
        self, addresses: np.ndarray, fault_bits: np.ndarray
    ) -> np.ndarray:
        flip = fault_bits[_rows(addresses.shape[0]), addresses]
        return self._truth_out[addresses] ^ flip


class _RepetitionBatchedLUT(BatchedLUT):
    """N-copy majority of the addressed bit only.

    All copies store the same truth bit ``t``, and for odd ``N`` majority
    commutes with complement, so ``maj(t ^ f_c) = t ^ maj(f_c)``: the flip
    is the majority of the fault bits at the addressed copies.
    """

    def __init__(self, lut: CodedLUT, code: RepetitionCode) -> None:
        super().__init__(lut)
        self._copies = code.copies
        positions = np.empty((code.data_bits, code.copies), dtype=np.intp)
        for index in range(code.data_bits):
            for copy in range(code.copies):
                positions[index, copy] = code.position(copy, index)
        self._positions = positions

    def read_batch(
        self, addresses: np.ndarray, fault_bits: np.ndarray
    ) -> np.ndarray:
        rows = _rows(addresses.shape[0])
        copy_cols = self._positions[addresses]  # (n, copies)
        copy_faults = fault_bits[rows[:, None], copy_cols]
        ones = np.add.reduce(copy_faults.astype(np.int64), axis=1)
        flip = (ones > self._copies // 2).astype(np.uint8)
        return self._truth_out[addresses] ^ flip


class _HammingOutputBatchedLUT(BatchedLUT):
    """Paper-semantics Hamming read (and the ``hamming-fp`` variant).

    Per block, the syndrome of the faulted word equals the syndrome of the
    fault bits alone (XOR of the Hamming *positions* of the set fault
    bits).  The output corrector flips the delivered bit when the syndrome
    names the addressed data position (true correction), a check-bit
    position, or an out-of-range position (the false positives behind the
    paper's ``alunh`` < ``alunn`` result); ``hamming-fp`` flips on any
    nonzero syndrome.
    """

    def __init__(self, lut: CodedLUT, fp_mode: bool) -> None:
        super().__init__(lut)
        blocks = lut.blocks
        code = blocks[0][0]
        assert isinstance(code, HammingCode)
        self._fp_mode = fp_mode
        self._block_size = lut.block_size
        self._code_bits = code.total_bits
        self._stored_offsets = np.array(
            [stored_offset for _, stored_offset, _ in blocks], dtype=np.intp
        )
        self._data_positions = np.array(code.data_positions, dtype=np.intp)
        #: Hamming position of stored bit i is i + 1; the syndrome is the
        #: XOR of positions of set fault bits.
        self._position_weights = np.arange(
            1, code.total_bits + 1, dtype=np.int64
        )
        # Syndromes that flip the output regardless of the address:
        # check-bit positions (powers of two) and out-of-range values.
        n_syndromes = 1 << len(code.check_positions)
        false_positive = np.zeros(n_syndromes, dtype=bool)
        for syn in range(1, n_syndromes):
            false_positive[syn] = (
                syn > code.total_bits or (syn & (syn - 1)) == 0
            )
        self._false_positive = false_positive

    def read_batch(
        self, addresses: np.ndarray, fault_bits: np.ndarray
    ) -> np.ndarray:
        rows = _rows(addresses.shape[0])
        block_index = addresses // self._block_size
        payload = addresses - block_index * self._block_size
        offsets = self._stored_offsets[block_index]
        cols = offsets[:, None] + np.arange(self._code_bits)[None, :]
        block_bits = fault_bits[rows[:, None], cols]  # (n, code bits)
        syndrome = np.bitwise_xor.reduce(
            block_bits.astype(np.int64) * self._position_weights[None, :],
            axis=1,
        )
        data_cols = self._data_positions[payload]
        raw_flip = block_bits[rows, data_cols]
        if self._fp_mode:
            corrector_flip = syndrome != 0
        else:
            corrector_flip = (syndrome != 0) & (
                self._false_positive[syndrome] | (syndrome - 1 == data_cols)
            )
        flip = raw_flip ^ corrector_flip.astype(np.uint8)
        return self._truth_out[addresses] ^ flip


def build_batched_lut(lut) -> Optional[BatchedLUT]:
    """Build the vectorized kernel for a LUT, or ``None`` if unsupported.

    Unsupported tables (gate-level decoders, generic block decoders) keep
    working through the scalar path; callers treat ``None`` as "fall back".
    """
    if not isinstance(lut, CodedLUT):
        return None
    blocks = lut.blocks
    code = blocks[0][0]
    if isinstance(code, IdentityCode):
        return _IdentityBatchedLUT(lut)
    if isinstance(code, RepetitionCode):
        return _RepetitionBatchedLUT(lut, code)
    if lut.scheme in ("hamming", "hamming-fp") and isinstance(
        code, HammingCode
    ):
        # The gather geometry assumes every block shares one code shape
        # (always true when the table size is a block-size multiple).
        if all(
            isinstance(block_code, HammingCode)
            and block_code.total_bits == code.total_bits
            and block_code.data_positions == code.data_positions
            for block_code, _, _ in blocks
        ):
            return _HammingOutputBatchedLUT(lut, fp_mode=lut.scheme == "hamming-fp")
    return None
