"""Error-coded lookup tables with per-read fault overlay.

A :class:`CodedLUT` is the unit the paper's fault injector attacks: "we
inject errors in the NanoBox ALUs by XORing the lookup table bit strings
with a fault mask" (Section 4, Figure 6a).  The stored image -- truth-table
bits *plus* check bits -- occupies :attr:`CodedLUT.total_bits` consecutive
fault-injection sites; a read XORs the caller's fault word onto the stored
image and then runs the configured decoder.

Decoder semantics per scheme (these drive the paper's headline result):

* ``none`` -- return the addressed bit; faults on non-addressed bits are
  never observed.
* ``tmr`` (triplicated bit string) -- majority of the three copies of the
  addressed bit only, as a hardware 3-input majority gate would see.
* ``hamming`` -- paper-calibrated information-code behaviour.  The detector
  computes its syndrome over the *whole* stored block and feeds the error
  corrector, "which makes changes to any flipped bits in the function
  output" (paper Section 2.1).  A syndrome naming a data position corrects
  that stored bit (which fixes the output when the addressed bit itself was
  hit); but a syndrome naming a *check-bit* position, or an invalid
  position, is misread by the output corrector as a function-output error
  and flips the delivered bit.  Those are exactly the "false positives
  caused by errors in bits which are not addressed by the lookup table
  inputs" the paper blames for ``alunh`` losing to the uncoded ``alunn``
  at every injected fault percentage while still beating the CMOS baseline
  (Section 5).
* ``hamming-sec`` -- textbook positional single-error correction (decode
  the syndrome to a stored-bit position and flip that stored bit; no
  false positives).  Not one of the paper's configurations; the ablation
  benches use it to show that a clean SEC decoder would actually have
  beaten the uncoded table at low fault densities.
* ``hamming-fp`` -- pessimistic variant: *any* nonzero syndrome flips the
  delivered output bit.  Also ablation-only; brackets the behaviour from
  the other side.
* ``parity`` -- detect-only; the payload passes through unchanged.

Per the paper, the detector/corrector logic itself is fault-free; only the
stored bits take hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.coding import (
    BlockCode,
    DecodeOutcome,
    HammingCode,
    HsiaoCode,
    IdentityCode,
    ParityCode,
    RepetitionCode,
)
from repro.coding.bits import bit_length_mask
from repro.lut.table import TruthTable

#: Hamming/parity protection is applied to blocks of this many truth-table
#: bits.  16-bit blocks with 5 Hamming check bits are what make ``alunh``
#: land on exactly 672 fault sites (16 LUTs x (32 + 2x5)).
DEFAULT_BLOCK_SIZE = 16

_BLOCKED_SCHEMES = {"hamming", "hamming-sec", "hamming-fp", "hsiao", "parity"}
_HAMMING_SCHEMES = {"hamming", "hamming-sec", "hamming-fp"}
#: Replicated-string schemes: name -> (copies, physical layout).
_REPLICATED_LAYOUTS = {
    "tmr": (3, "blocked"),
    "tmr-interleaved": (3, "interleaved"),
    "5mr": (5, "blocked"),
    "7mr": (7, "blocked"),
}


@dataclass(frozen=True)
class LUTReadTrace:
    """Diagnostic record of a single coded read.

    Attributes:
        value: the bit delivered to downstream logic.
        correct_value: the fault-free truth-table bit for the address.
        outcome: the block decoder's belief, or ``None`` for uncoded reads.
        block_index: which protected block served the read (0 for whole-
            string schemes).
    """

    value: int
    correct_value: int
    outcome: Optional[DecodeOutcome]
    block_index: int

    @property
    def observable_error(self) -> bool:
        """True when the delivered bit differs from the fault-free bit."""
        return self.value != self.correct_value


@dataclass(frozen=True)
class _CodedLayout:
    """Shared, immutable encoding of one ``(truth, scheme, block_size)``.

    Building the layout runs the block encoders over the whole truth
    table; the campaign executor constructs the same ALUs in every worker
    process, so identical layouts are built once per process and shared
    (:func:`_coded_layout` is ``lru_cache``-memoised -- safe because both
    the layout and its block codes are immutable).
    """

    blocks: Tuple[Tuple[BlockCode, int, int], ...]  # (code, stored off, data off)
    storage: int
    total_bits: int


@lru_cache(maxsize=None)
def _coded_layout(
    truth: TruthTable, scheme: str, block_size: int
) -> _CodedLayout:
    """Build (or fetch the cached) stored layout for a coded table."""
    if scheme == "none":
        code: BlockCode = IdentityCode(truth.size)
        return _CodedLayout(
            blocks=((code, 0, 0),),
            storage=code.encode(truth.bits),
            total_bits=code.total_bits,
        )
    if scheme in _REPLICATED_LAYOUTS:
        copies, layout = _REPLICATED_LAYOUTS[scheme]
        code = RepetitionCode(truth.size, copies=copies, layout=layout)
        return _CodedLayout(
            blocks=((code, 0, 0),),
            storage=code.encode(truth.bits),
            total_bits=code.total_bits,
        )
    if scheme in _BLOCKED_SCHEMES:
        size = truth.size
        data_offset = 0
        stored_offset = 0
        storage = 0
        blocks: List[Tuple[BlockCode, int, int]] = []
        while data_offset < size:
            chunk = min(block_size, size - data_offset)
            if scheme in _HAMMING_SCHEMES:
                code = HammingCode(chunk)
            elif scheme == "hsiao":
                code = HsiaoCode(chunk)
            else:
                code = ParityCode(chunk)
            data = (truth.bits >> data_offset) & bit_length_mask(chunk)
            storage |= code.encode(data) << stored_offset
            blocks.append((code, stored_offset, data_offset))
            stored_offset += code.total_bits
            data_offset += chunk
        return _CodedLayout(
            blocks=tuple(blocks), storage=storage, total_bits=stored_offset
        )
    raise ValueError(
        f"unknown LUT coding scheme {scheme!r}; expected one of "
        f"none, hamming, hamming-sec, hamming-fp, hsiao, parity, "
        f"tmr, tmr-interleaved, 5mr, 7mr"
    )


class CodedLUT:
    """A truth table stored under a bit-level error-coding scheme."""

    def __init__(
        self,
        truth: TruthTable,
        scheme: str = "none",
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self._truth = truth
        self._scheme = scheme
        self._block_size = block_size
        layout = _coded_layout(truth, scheme, block_size)
        self._blocks = layout.blocks
        self._storage = layout.storage
        self._total_bits = layout.total_bits

    # ------------------------------------------------------------ properties

    @property
    def truth(self) -> TruthTable:
        """The fault-free logic function this LUT implements."""
        return self._truth

    @property
    def scheme(self) -> str:
        """The bit-level coding scheme name."""
        return self._scheme

    @property
    def n_inputs(self) -> int:
        """Number of LUT address inputs."""
        return self._truth.n_inputs

    @property
    def total_bits(self) -> int:
        """Stored bits == fault-injection sites contributed by this LUT."""
        return self._total_bits

    @property
    def storage(self) -> int:
        """The fault-free stored image (truth bits + check bits)."""
        return self._storage

    @property
    def block_count(self) -> int:
        """Number of independently protected blocks."""
        return len(self._blocks)

    @property
    def block_size(self) -> int:
        """Data bits per protected block (whole-string schemes ignore it)."""
        return self._block_size

    @property
    def blocks(self) -> Tuple[Tuple[BlockCode, int, int], ...]:
        """Block layout as ``(code, stored offset, data offset)`` triples.

        Public so the batched evaluation engine can mirror the decode
        geometry without re-deriving it.
        """
        return tuple(self._blocks)

    # ----------------------------------------------------------------- reads

    def _block_for(self, address: int) -> Tuple[BlockCode, int, int]:
        if len(self._blocks) == 1:
            return self._blocks[0]
        index = address // self._block_size
        return self._blocks[index]

    def read(self, address: int, fault_word: int = 0) -> int:
        """Read the bit at ``address`` through the decoder under faults.

        Args:
            address: truth-table address (``0 .. 2**k - 1``).
            fault_word: integer whose bit ``i`` flips stored bit ``i`` of
                this LUT for the duration of the read.
        """
        if address < 0 or address >= self._truth.size:
            raise IndexError(
                f"address {address} out of range 0..{self._truth.size - 1}"
            )
        return self.read_unchecked(address, fault_word)

    def read_unchecked(self, address: int, fault_word: int = 0) -> int:
        """:meth:`read` without the bounds check.

        The ALU slices and voters assemble addresses from individual 0/1
        bits, so they are in range by construction; this fast path skips
        the per-read validation they would otherwise pay 16+ times per
        instruction.
        """
        stored = self._storage ^ fault_word
        code, stored_offset, data_offset = self._block_for(address)
        if isinstance(code, IdentityCode):
            return (stored >> address) & 1
        if isinstance(code, RepetitionCode):
            return code.decode_bit(stored, address)
        block = (stored >> stored_offset) & bit_length_mask(code.total_bits)
        if self._scheme in ("hamming", "hamming-fp"):
            assert isinstance(code, HammingCode)
            value, _ = self._hamming_output(code, block, address - data_offset)
            return value
        result = code.decode(block)
        return (result.data >> (address - data_offset)) & 1

    def _hamming_output(
        self, code: HammingCode, block: int, payload_index: int
    ) -> Tuple[int, Optional[DecodeOutcome]]:
        """Paper-style Hamming read: detector verdict applied at the output.

        Returns ``(delivered bit, decoder outcome)``.  The ``hamming``
        scheme flips the output for syndromes naming the addressed bit
        (true correction), a check-bit position, or an invalid position
        (false positives); a syndrome naming some *other* data position
        corrects that stored bit, which leaves the addressed output alone.
        The ``hamming-fp`` scheme flips the output on any nonzero syndrome.
        """
        raw = (block >> code.data_positions[payload_index]) & 1
        syn = code.syndrome(block)
        if syn == 0:
            return raw, DecodeOutcome.CLEAN
        if self._scheme == "hamming-fp":
            return raw ^ 1, DecodeOutcome.CORRECTED
        if syn - 1 == code.data_positions[payload_index]:
            return raw ^ 1, DecodeOutcome.CORRECTED  # genuine correction
        if syn > code.total_bits or (syn & (syn - 1)) == 0:
            # Check-bit or out-of-range syndrome: the output corrector
            # misreads it as a function-output error -- false positive.
            return raw ^ 1, DecodeOutcome.CORRECTED
        # Syndrome names another data bit; correcting it does not touch
        # the addressed output.
        return raw, DecodeOutcome.CORRECTED

    def read_traced(self, address: int, fault_word: int = 0) -> LUTReadTrace:
        """Like :meth:`read` but returns the full diagnostic trace."""
        if address < 0 or address >= self._truth.size:
            raise IndexError(
                f"address {address} out of range 0..{self._truth.size - 1}"
            )
        stored = self._storage ^ fault_word
        code, stored_offset, data_offset = self._block_for(address)
        correct = self._truth.lookup_unchecked(address)  # validated above
        block_index = 0 if len(self._blocks) == 1 else address // self._block_size
        if isinstance(code, IdentityCode):
            value = (stored >> address) & 1
            return LUTReadTrace(value, correct, None, block_index)
        block = (stored >> stored_offset) & bit_length_mask(code.total_bits)
        if self._scheme in ("hamming", "hamming-fp"):
            assert isinstance(code, HammingCode)
            value, outcome = self._hamming_output(code, block, address - data_offset)
            return LUTReadTrace(value, correct, outcome, block_index)
        result = code.decode(block)
        value = (result.data >> (address - data_offset)) & 1
        return LUTReadTrace(value, correct, result.outcome, block_index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CodedLUT(n_inputs={self.n_inputs}, scheme={self._scheme!r}, "
            f"total_bits={self._total_bits})"
        )
