"""The recursive NanoBox abstraction (paper Section 2).

A *NanoBox* is "a black box entity that uses a specified fault-tolerance
technique"; the processor grid is a hierarchy of such boxes, with a
different technique possible at the bit, module, and system levels.  Faults
that escape one level's technique should be masked by the box one level up.

This package provides the level vocabulary, an introspector that renders
any :class:`~repro.alu.base.FaultableUnit` (or grid cell) as its box
hierarchy, and an error ledger that attributes injected faults to boxes and
records which level ultimately masked them -- the bookkeeping behind the
hierarchy-effectiveness analyses in :mod:`repro.experiments`.
"""

from repro.core.box import FaultToleranceLevel, NanoBox
from repro.core.hierarchy import area_overhead, describe_unit, render_tree
from repro.core.telemetry import ErrorLedger, InjectionReport

__all__ = [
    "ErrorLedger",
    "FaultToleranceLevel",
    "InjectionReport",
    "NanoBox",
    "area_overhead",
    "describe_unit",
    "render_tree",
]
