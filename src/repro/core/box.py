"""NanoBox tree nodes and fault-tolerance levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple


class FaultToleranceLevel(enum.Enum):
    """The three rungs of the recursive hierarchy (paper Section 2)."""

    #: Error-coded lookup-table bit strings / raw gate nodes.
    BIT = "bit"
    #: Space or time redundancy around an ALU, plus the majority voter and
    #: triplicated memory-word fields.
    MODULE = "module"
    #: The grid: heartbeat monitoring, watchdog, cell disable and failover.
    SYSTEM = "system"

    @property
    def rank(self) -> int:
        """0 for bit, 1 for module, 2 for system (outermost)."""
        return ("bit", "module", "system").index(self.value)


@dataclass(frozen=True)
class NanoBox:
    """One black box in the recursive hierarchy.

    Attributes:
        name: the box's label (e.g. ``slice3.result_lut`` or ``voter``).
        level: which hierarchy rung the box's technique belongs to.
        technique: the fault-tolerance technique the box applies
            (``"tmr"``, ``"hamming"``, ``"majority-vote"``, ``"none"``...).
        sites: fault-injection sites contained in this box, children
            included.
        children: nested boxes.
    """

    name: str
    level: FaultToleranceLevel
    technique: str
    sites: int
    children: Tuple["NanoBox", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.sites < 0:
            raise ValueError(f"sites must be non-negative, got {self.sites}")
        child_sites = sum(c.sites for c in self.children)
        if self.children and child_sites > self.sites:
            raise ValueError(
                f"box {self.name!r} claims {self.sites} sites but children "
                f"hold {child_sites}"
            )

    @property
    def own_sites(self) -> int:
        """Sites owned directly by this box (not inside any child)."""
        return self.sites - sum(c.sites for c in self.children)

    @property
    def depth(self) -> int:
        """Height of the box tree rooted here (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(c.depth for c in self.children)

    def walk(self) -> Iterator["NanoBox"]:
        """Yield this box and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["NanoBox"]:
        """Locate a descendant (or self) by exact name."""
        for box in self.walk():
            if box.name == name:
                return box
        return None

    def boxes_at(self, level: FaultToleranceLevel) -> Tuple["NanoBox", ...]:
        """All boxes in the tree whose technique lives at ``level``."""
        return tuple(b for b in self.walk() if b.level is level)

    def leaf_count(self) -> int:
        """Number of leaves in the tree."""
        return sum(1 for b in self.walk() if not b.children)
