"""Introspection: render compute units as NanoBox hierarchies.

``describe_unit`` understands the library's ALU family and produces the
box-within-a-box tree the paper draws in prose: lookup tables (bit level)
inside ALU cores, cores inside redundancy wrappers with their voter and
holding registers (module level).  The grid package extends the same tree
one level up (system level) via its own describe helpers.
"""

from __future__ import annotations

from typing import List

from repro.alu.base import FaultableUnit
from repro.alu.cmos import CMOSALU
from repro.alu.nanobox import NanoBoxALU
from repro.alu.redundancy import SimplexALU, SpaceRedundantALU, TimeRedundantALU
from repro.alu.reference import ReferenceALU
from repro.alu.voters import CMOSVoter, LUTVoter, Voter
from repro.core.box import FaultToleranceLevel, NanoBox


def _describe_nanobox_core(core: NanoBoxALU, name: str) -> NanoBox:
    luts: List[NanoBox] = []
    for seg in core.site_space.segments:
        luts.append(
            NanoBox(
                name=f"{name}.{seg.name}",
                level=FaultToleranceLevel.BIT,
                technique=core.scheme,
                sites=seg.size,
            )
        )
    return NanoBox(
        name=name,
        level=FaultToleranceLevel.BIT,
        technique=f"lut[{core.scheme}]",
        sites=core.site_count,
        children=tuple(luts),
    )


def _describe_cmos_core(core: CMOSALU, name: str) -> NanoBox:
    return NanoBox(
        name=name,
        level=FaultToleranceLevel.BIT,
        technique="cmos-gates",
        sites=core.site_count,
    )


def _describe_core(core: FaultableUnit, name: str) -> NanoBox:
    if isinstance(core, NanoBoxALU):
        return _describe_nanobox_core(core, name)
    if isinstance(core, CMOSALU):
        return _describe_cmos_core(core, name)
    return NanoBox(
        name=name,
        level=FaultToleranceLevel.BIT,
        technique="opaque",
        sites=core.site_count,
    )


def _describe_voter(voter: Voter, name: str) -> NanoBox:
    if isinstance(voter, LUTVoter):
        technique = f"majority-vote[lut:{voter.scheme}]"
    elif isinstance(voter, CMOSVoter):
        technique = "majority-vote[cmos]"
    else:  # pragma: no cover - future voter kinds
        technique = "majority-vote"
    return NanoBox(
        name=name,
        level=FaultToleranceLevel.MODULE,
        technique=technique,
        sites=voter.site_count,
    )


def describe_unit(unit: FaultableUnit, name: str = "") -> NanoBox:
    """Return the NanoBox hierarchy of an ALU-family compute unit."""
    label = name or unit.site_space.name
    if isinstance(unit, SimplexALU):
        core = _describe_core(unit.core, f"{label}.core")
        return NanoBox(
            name=label,
            level=FaultToleranceLevel.MODULE,
            technique="none",
            sites=unit.site_count,
            children=(core,),
        )
    if isinstance(unit, SpaceRedundantALU):
        children = [
            _describe_core(unit.core, f"{label}.copy{i}") for i in range(3)
        ]
        children.append(_describe_voter(unit.voter, f"{label}.voter"))
        return NanoBox(
            name=label,
            level=FaultToleranceLevel.MODULE,
            technique="space-redundancy",
            sites=unit.site_count,
            children=tuple(children),
        )
    if isinstance(unit, TimeRedundantALU):
        children = [
            _describe_core(unit.core, f"{label}.pass{i}") for i in range(3)
        ]
        children.append(_describe_voter(unit.voter, f"{label}.voter"))
        children.append(
            NanoBox(
                name=f"{label}.result_registers",
                level=FaultToleranceLevel.MODULE,
                technique="triplicated-storage",
                sites=unit.storage_sites,
            )
        )
        return NanoBox(
            name=label,
            level=FaultToleranceLevel.MODULE,
            technique="time-redundancy",
            sites=unit.site_count,
            children=tuple(children),
        )
    if isinstance(unit, ReferenceALU):
        return NanoBox(
            name=label,
            level=FaultToleranceLevel.MODULE,
            technique="oracle",
            sites=0,
        )
    return _describe_core(unit, label)


def render_tree(box: NanoBox, indent: str = "") -> str:
    """ASCII-render a NanoBox hierarchy, one box per line.

    LUT-level leaves of a NanoBox core are summarised (16 identical tables
    would otherwise dominate the listing).
    """
    lines = [
        f"{indent}{box.name}  [{box.level.value}/{box.technique}]  "
        f"sites={box.sites}"
    ]
    children = box.children
    if (
        len(children) > 4
        and all(not c.children for c in children)
        and len({(c.technique, c.sites) for c in children}) == 1
    ):
        c = children[0]
        lines.append(
            f"{indent}  ({len(children)} x {c.technique} leaf boxes, "
            f"{c.sites} sites each)"
        )
    else:
        for child in children:
            lines.append(render_tree(child, indent + "  "))
    return "\n".join(lines)


def area_overhead(unit: FaultableUnit, baseline: FaultableUnit) -> float:
    """Site-count ratio of ``unit`` to ``baseline``.

    Fault sites are storage bits / gate nodes, so with the paper's regular
    nanodevice layout the ratio tracks silicon (or molecular) area.  The
    headline claim -- triplicate at the bit level, triplicate again at the
    module level -- costs ``aluss``/``alunn`` = 5040/512 ~ 9.8x, the
    "area overhead on the order of 9x" of the abstract.
    """
    if baseline.site_count == 0:
        raise ValueError("baseline has no fault sites; overhead undefined")
    return unit.site_count / baseline.site_count
