"""Error accounting across hierarchy levels.

The recursive-reliability argument (paper Section 2) is that faults
uncorrectable at one level "should be covered by the fault tolerance
technique of a box at a higher level".  :class:`ErrorLedger` measures that
directly: for each injected computation it records how many faults landed
in each site segment and whether the unit's final output was still correct,
accumulating the masked / unmasked tallies per fault-count bucket that the
hierarchy-effectiveness benches report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.alu.base import FaultableUnit
from repro.alu.reference import reference_compute
from repro.coding.bits import popcount


@dataclass(frozen=True)
class InjectionReport:
    """Outcome of one observed computation under one fault mask."""

    total_faults: int
    faults_by_segment: Dict[str, int]
    output_correct: bool

    @property
    def masked(self) -> bool:
        """True when faults were injected yet the output stayed correct."""
        return self.total_faults > 0 and self.output_correct


class ErrorLedger:
    """Accumulates injection outcomes for one compute unit."""

    def __init__(self, unit: FaultableUnit) -> None:
        self._unit = unit
        self._observations = 0
        self._clean_runs = 0
        self._masked = 0
        self._unmasked = 0
        self._segment_faults: Dict[str, int] = {
            seg.name: 0 for seg in unit.site_space.segments
        }
        # masked/unmasked tallies keyed by injected-fault count
        self._by_count: Dict[int, Tuple[int, int]] = {}

    @property
    def unit(self) -> FaultableUnit:
        return self._unit

    @property
    def observations(self) -> int:
        """Total computations observed."""
        return self._observations

    @property
    def masked_count(self) -> int:
        """Computations where injected faults were fully masked."""
        return self._masked

    @property
    def unmasked_count(self) -> int:
        """Computations where injected faults corrupted the output."""
        return self._unmasked

    @property
    def clean_runs(self) -> int:
        """Computations that received no faults at all."""
        return self._clean_runs

    @property
    def segment_faults(self) -> Dict[str, int]:
        """Cumulative injected faults per site segment."""
        return dict(self._segment_faults)

    def coverage(self) -> float:
        """Fraction of faulty computations whose errors were masked.

        Raises:
            ValueError: if no faulty computation has been observed.
        """
        faulty = self._masked + self._unmasked
        if faulty == 0:
            raise ValueError("no faulty computations observed yet")
        return self._masked / faulty

    def coverage_by_fault_count(self) -> Dict[int, float]:
        """Masking probability as a function of injected-fault count."""
        return {
            count: masked / (masked + unmasked)
            for count, (masked, unmasked) in sorted(self._by_count.items())
            if masked + unmasked > 0
        }

    def observe(self, op: int, a: int, b: int, fault_mask: int) -> InjectionReport:
        """Run one computation under ``fault_mask`` and record the outcome."""
        by_segment = self._unit.site_space.attribute(fault_mask)
        total = popcount(fault_mask)
        result = self._unit.compute(op, a, b, fault_mask=fault_mask)
        expected = reference_compute(op, a, b)
        correct = result.value == expected.value

        self._observations += 1
        if total == 0:
            self._clean_runs += 1
        elif correct:
            self._masked += 1
        else:
            self._unmasked += 1
        if total > 0:
            masked, unmasked = self._by_count.get(total, (0, 0))
            if correct:
                masked += 1
            else:
                unmasked += 1
            self._by_count[total] = (masked, unmasked)
        for name, count in by_segment.items():
            self._segment_faults[name] += count

        return InjectionReport(
            total_faults=total,
            faults_by_segment=by_segment,
            output_correct=correct,
        )
